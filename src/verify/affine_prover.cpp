#include "verify/affine_prover.hpp"

#include <numeric>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "verify/congruence.hpp"

namespace polymem::verify {

namespace {

// The per-axis floor divisor shared by every form that floors that axis.
// All five shipped schemes floor each axis at most once (ReRo/RoCo floor j
// by q, ReCo/RoCo floor i by p, ReTr floors one axis by s); the prover's
// indicator decomposition relies on the divisor being unique per axis.
std::int64_t floor_divisor(const std::vector<MafForm>& forms, bool axis_i) {
  std::int64_t divisor = 1;
  for (const MafForm& form : forms) {
    const std::int64_t coeff = axis_i ? form.cI : form.cJ;
    const std::int64_t div = axis_i ? form.div_i : form.div_j;
    if (coeff == 0 || div == 1) continue;
    POLYMEM_ASSERT(divisor == 1 || divisor == div);
    divisor = div;
  }
  return divisor;
}

std::vector<access::Coord> lane_offsets(const AffinePattern& pattern) {
  std::vector<access::Coord> offsets;
  offsets.reserve(static_cast<std::size_t>(pattern.count()));
  for (std::int64_t u = 0; u < pattern.lanes_u; ++u)
    for (std::int64_t v = 0; v < pattern.lanes_v; ++v)
      offsets.push_back({pattern.i.eval(u, v), pattern.j.eval(u, v)});
  return offsets;
}

// Two lanes with identical offsets alias the same element at every anchor;
// such a pattern is rejected as degenerate rather than "refuted".
std::string find_duplicate_lanes(const std::vector<access::Coord>& offsets) {
  std::unordered_map<access::Coord, std::int64_t, access::CoordHash> seen;
  for (std::size_t idx = 0; idx < offsets.size(); ++idx) {
    const auto [it, fresh] =
        seen.emplace(offsets[idx], static_cast<std::int64_t>(idx));
    if (!fresh) {
      std::ostringstream os;
      os << "lanes " << it->second << " and " << idx
         << " alias the same element offset " << offsets[idx];
      return os.str();
    }
  }
  return {};
}

// One feasible value of the floor indicator on one axis: the indicator bit
// and a witness residue r = (anchor + offset_ref) mod divisor realizing it.
struct IndicatorCase {
  std::int64_t eps = 0;
  std::int64_t r = 0;
};

// Enumerates the feasible indicator bits for one axis of a lane pair.
//
// With Δ = divisor·base + rho (floored) and r = (x + off_ref) mod divisor,
// the floor difference between the two lanes is base + [r >= divisor-rho].
// Anchor alignment x ≡ 0 (mod align) restricts r to the coset
// r ≡ off_ref (mod gcd(align, divisor)); a bit is feasible iff its residue
// interval ([0, divisor-rho) for 0, [divisor-rho, divisor) for 1) meets
// the coset. first_at_least gives the smallest witness residue directly.
std::vector<IndicatorCase> feasible_indicators(std::int64_t divisor,
                                               std::int64_t rho,
                                               std::int64_t off_ref,
                                               std::int64_t align) {
  const std::int64_t g = std::gcd(align, divisor);
  const ResidueClass coset{floormod(off_ref, g), g};
  std::vector<IndicatorCase> cases;
  for (std::int64_t eps = 0; eps <= 1; ++eps) {
    const std::int64_t lo = eps == 0 ? 0 : divisor - rho;
    const std::int64_t hi = eps == 0 ? divisor - rho : divisor;
    if (lo >= hi) continue;  // empty interval (rho == 0 has no eps=1 region)
    const std::int64_t r = coset.first_at_least(lo);
    if (r < hi) cases.push_back({eps, r});
  }
  return cases;
}

// Reconstructs the smallest non-negative anchor coordinate x with
// x ≡ 0 (mod align) and (x + off_ref) mod divisor == r. Solvable by
// construction: r was drawn from the coset off_ref mod gcd(align, divisor).
std::int64_t witness_anchor_axis(std::int64_t divisor, std::int64_t off_ref,
                                 std::int64_t r, std::int64_t align) {
  const auto cls = intersect(ResidueClass{0, align},
                             ResidueClass{floormod(r - off_ref, divisor),
                                          divisor});
  POLYMEM_ASSERT(cls.has_value());
  return cls->first_at_least(0);
}

}  // namespace

const char* anchor_class_name(AnchorClass anchors) {
  return anchors == AnchorClass::kAligned ? "aligned" : "any";
}

AffineVerdict prove_conflict_free(const SymbolicMaf& maf,
                                  const AffinePattern& pattern,
                                  AnchorClass anchors) {
  AffineVerdict verdict;
  verdict.degenerate = pattern.invalid_reason();
  if (!verdict.degenerate.empty()) return verdict;

  const std::vector<access::Coord> offsets = lane_offsets(pattern);
  verdict.degenerate = find_duplicate_lanes(offsets);
  if (!verdict.degenerate.empty()) return verdict;

  const std::int64_t div_i = floor_divisor(maf.forms, /*axis_i=*/true);
  const std::int64_t div_j = floor_divisor(maf.forms, /*axis_i=*/false);
  const std::int64_t align_i =
      anchors == AnchorClass::kAligned ? static_cast<std::int64_t>(maf.p) : 1;
  const std::int64_t align_j =
      anchors == AnchorClass::kAligned ? static_cast<std::int64_t>(maf.q) : 1;

  const auto n = static_cast<std::int64_t>(offsets.size());
  for (std::int64_t a = 0; a < n; ++a) {
    for (std::int64_t b = a + 1; b < n; ++b) {
      ++verdict.pairs_checked;
      const std::int64_t di = offsets[b].i - offsets[a].i;
      const std::int64_t dj = offsets[b].j - offsets[a].j;
      const std::int64_t base_i = floordiv(di, div_i);
      const std::int64_t rho_i = floormod(di, div_i);
      const std::int64_t base_j = floordiv(dj, div_j);
      const std::int64_t rho_j = floormod(dj, div_j);

      const auto cases_i =
          feasible_indicators(div_i, rho_i, offsets[a].i, align_i);
      const auto cases_j =
          feasible_indicators(div_j, rho_j, offsets[a].j, align_j);

      for (const IndicatorCase& ci : cases_i) {
        for (const IndicatorCase& cj : cases_j) {
          // Bank(b) == Bank(a) iff every mixed-radix digit agrees, i.e.
          // every form's unreduced delta is ≡ 0 modulo its modulus.
          bool collide = true;
          for (const MafForm& form : maf.forms) {
            const std::int64_t delta = form.ci * di + form.cj * dj +
                                       form.cI * (base_i + ci.eps) +
                                       form.cJ * (base_j + cj.eps);
            if (floormod(delta, form.modulus) != 0) {
              collide = false;
              break;
            }
          }
          if (!collide) continue;

          // A collision region is non-empty: reconstruct a concrete
          // anchor realizing (r_i, r_j) and report the witness.
          AffineCounterexample cx;
          cx.anchor = {
              witness_anchor_axis(div_i, offsets[a].i, ci.r, align_i),
              witness_anchor_axis(div_j, offsets[a].j, cj.r, align_j)};
          cx.lane_a = a;
          cx.lane_b = b;
          cx.elem_a = {cx.anchor.i + offsets[a].i, cx.anchor.j + offsets[a].j};
          cx.elem_b = {cx.anchor.i + offsets[b].i, cx.anchor.j + offsets[b].j};
          cx.bank = maf.bank(cx.elem_a.i, cx.elem_a.j);
          POLYMEM_ASSERT(maf.bank(cx.elem_b.i, cx.elem_b.j) == cx.bank);
          verdict.counterexample = cx;
          return verdict;
        }
      }
    }
  }
  verdict.conflict_free = true;
  return verdict;
}

AffineVerdict sweep_conflict_free(const maf::Maf& maf,
                                  const AffinePattern& pattern,
                                  AnchorClass anchors) {
  AffineVerdict verdict;
  verdict.degenerate = pattern.invalid_reason();
  if (!verdict.degenerate.empty()) return verdict;

  const std::vector<access::Coord> offsets = lane_offsets(pattern);
  verdict.degenerate = find_duplicate_lanes(offsets);
  if (!verdict.degenerate.empty()) return verdict;

  const std::int64_t step_i =
      anchors == AnchorClass::kAligned ? maf.p() : 1;
  const std::int64_t step_j =
      anchors == AnchorClass::kAligned ? maf.q() : 1;
  // Owner lane of each bank at the current anchor, -1 when untouched.
  std::vector<std::int64_t> owner(maf.banks());
  for (std::int64_t x = 0; x < maf.period_i(); x += step_i) {
    for (std::int64_t y = 0; y < maf.period_j(); y += step_j) {
      ++verdict.pairs_checked;  // anchors scanned, for the sweep
      std::fill(owner.begin(), owner.end(), std::int64_t{-1});
      for (std::size_t idx = 0; idx < offsets.size(); ++idx) {
        const access::Coord elem{x + offsets[idx].i, y + offsets[idx].j};
        const maf::BankIndex bank = maf.bank(elem);
        if (owner[bank] >= 0) {
          AffineCounterexample cx;
          cx.anchor = {x, y};
          cx.lane_a = owner[bank];
          cx.lane_b = static_cast<std::int64_t>(idx);
          cx.elem_a = {x + offsets[cx.lane_a].i, y + offsets[cx.lane_a].j};
          cx.elem_b = elem;
          cx.bank = bank;
          verdict.counterexample = cx;
          return verdict;
        }
        owner[bank] = static_cast<std::int64_t>(idx);
      }
    }
  }
  verdict.conflict_free = true;
  return verdict;
}

maf::SupportLevel prove_affine_support(const SymbolicMaf& maf,
                                       const AffinePattern& pattern,
                                       AffineCounterexample* counterexample) {
  const AffineVerdict any =
      prove_conflict_free(maf, pattern, AnchorClass::kAny);
  if (any.ok()) return maf::SupportLevel::kAny;
  if (!any.degenerate.empty()) return maf::SupportLevel::kNone;
  const AffineVerdict aligned =
      prove_conflict_free(maf, pattern, AnchorClass::kAligned);
  if (aligned.ok()) {
    // kAligned holds; the witness that rules out kAny is the unaligned one.
    if (counterexample != nullptr && any.counterexample.has_value())
      *counterexample = *any.counterexample;
    return maf::SupportLevel::kAligned;
  }
  if (counterexample != nullptr && aligned.counterexample.has_value())
    *counterexample = *aligned.counterexample;
  return maf::SupportLevel::kNone;
}

std::string validate_symbolic_maf(const SymbolicMaf& sym,
                                  const maf::Maf& maf) {
  if (sym.p != maf.p() || sym.q != maf.q()) {
    std::ostringstream os;
    os << "geometry mismatch: symbolic " << sym.p << 'x' << sym.q
       << " vs concrete " << maf.p() << 'x' << maf.q();
    return os.str();
  }
  // One full period box plus a negative-coordinate margin: exhaustive by
  // the periodicity the classic prover (PMV004) establishes independently.
  const std::int64_t period_i = maf.period_i();
  const std::int64_t period_j = maf.period_j();
  for (std::int64_t i = -period_i; i < 2 * period_i; ++i) {
    for (std::int64_t j = -period_j; j < 2 * period_j; ++j) {
      const unsigned symbolic = sym.bank(i, j);
      const unsigned concrete = maf.bank(i, j);
      if (symbolic != concrete) {
        std::ostringstream os;
        os << '(' << i << ',' << j << "): symbolic bank " << symbolic
           << " != concrete bank " << concrete;
        return os.str();
      }
    }
  }
  return {};
}

std::vector<AffinePattern> canonical_affine_suite(unsigned p, unsigned q) {
  const auto pp = static_cast<std::int64_t>(p);
  const auto qq = static_cast<std::int64_t>(q);
  const std::int64_t n = pp * qq;
  std::vector<AffinePattern> suite;
  for (const access::PatternKind kind :
       {access::PatternKind::kRow, access::PatternKind::kCol,
        access::PatternKind::kRect, access::PatternKind::kTRect,
        access::PatternKind::kMainDiag, access::PatternKind::kSecDiag})
    suite.push_back(AffinePattern::of(kind, p, q));

  const auto add = [&suite](const char* name, std::int64_t lanes_u,
                            std::int64_t lanes_v, LaneExpr i, LaneExpr j) {
    AffinePattern pat;
    pat.name = name;
    pat.lanes_u = lanes_u;
    pat.lanes_v = lanes_v;
    pat.i = i;
    pat.j = j;
    suite.push_back(pat);
  };
  // Strided and skewed workload shapes beyond Table I, all p*q lanes wide:
  // the polymorphism the DSE scorer rewards is serving these too.
  add("row-stride2", 1, n, {0, 0, 0}, {0, 2, 0});
  add("row-strideq+1", 1, n, {0, 0, 0}, {0, qq + 1, 0});
  add("col-stride2", n, 1, {2, 0, 0}, {0, 0, 0});
  add("col-stridep+1", n, 1, {pp + 1, 0, 0}, {0, 0, 0});
  add("diag-stride2", n, 1, {2, 0, 0}, {2, 0, 0});
  add("rect-rowskew", pp, qq, {1, 0, 0}, {1, 1, 0});
  add("rect-colskew", pp, qq, {1, 1, 0}, {0, 1, 0});
  add("rect-stride2", pp, qq, {2, 0, 0}, {0, 2, 0});
  return suite;
}

}  // namespace polymem::verify
