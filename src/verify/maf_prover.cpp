#include "verify/maf_prover.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/math.hpp"
#include "core/agu.hpp"
#include "core/plan_cache.hpp"

namespace polymem::verify {

using access::Coord;
using access::PatternKind;

const char* check_code(CheckKind kind) {
  switch (kind) {
    case CheckKind::kConstruction: return "PMV001";
    case CheckKind::kBankRange: return "PMV002";
    case CheckKind::kPeriodicity: return "PMV003";
    case CheckKind::kConflictFreedom: return "PMV004";
    case CheckKind::kAddressInjectivity: return "PMV005";
    case CheckKind::kTemplateAgreement: return "PMV006";
    case CheckKind::kAffineConflict: return "PMV007";
    case CheckKind::kAffineForm: return "PMV008";
    case CheckKind::kAffineDifferential: return "PMV009";
    case CheckKind::kAffineDegenerate: return "PMV010";
  }
  throw InvalidArgument("unknown check kind");
}

const char* check_name(CheckKind kind) {
  switch (kind) {
    case CheckKind::kConstruction: return "construction";
    case CheckKind::kBankRange: return "bank-range";
    case CheckKind::kPeriodicity: return "periodicity";
    case CheckKind::kConflictFreedom: return "conflict-freedom";
    case CheckKind::kAddressInjectivity: return "address-injectivity";
    case CheckKind::kTemplateAgreement: return "template-agreement";
    case CheckKind::kAffineConflict: return "affine-conflict";
    case CheckKind::kAffineForm: return "affine-form";
    case CheckKind::kAffineDifferential: return "affine-differential";
    case CheckKind::kAffineDegenerate: return "affine-degenerate";
  }
  throw InvalidArgument("unknown check kind");
}

MafModel model_of(const maf::Maf& maf) {
  MafModel model;
  model.p = maf.p();
  model.q = maf.q();
  model.period_i = maf.period_i();
  model.period_j = maf.period_j();
  model.bank = [&maf](std::int64_t i, std::int64_t j) {
    return maf.bank(i, j);
  };
  return model;
}

namespace {

Violation violation(CheckKind check, const std::string& detail) {
  return {check, std::string("[") + check_code(check) + "] " + detail};
}

std::string coord_str(std::int64_t i, std::int64_t j) {
  std::ostringstream os;
  os << '(' << i << ',' << j << ')';
  return os.str();
}

void require_model(const MafModel& model) {
  POLYMEM_REQUIRE(model.p >= 1 && model.q >= 1,
                  "prover model needs a non-empty bank geometry");
  POLYMEM_REQUIRE(model.period_i >= 1 && model.period_j >= 1,
                  "prover model needs positive periods");
  POLYMEM_REQUIRE(static_cast<bool>(model.bank),
                  "prover model needs a bank function");
}

}  // namespace

std::optional<Violation> check_bank_range(const MafModel& model) {
  require_model(model);
  const unsigned n = model.banks();
  for (std::int64_t i = -model.period_i; i < 2 * model.period_i; ++i) {
    for (std::int64_t j = -model.period_j; j < 2 * model.period_j; ++j) {
      const unsigned b = model.bank(i, j);
      if (b >= n) {
        std::ostringstream os;
        os << "bank" << coord_str(i, j) << " = " << b
           << " escapes [0, " << n << ")";
        return violation(CheckKind::kBankRange, os.str());
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_periodicity(const MafModel& model) {
  require_model(model);
  if (model.period_i % model.p != 0 || model.period_j % model.q != 0) {
    std::ostringstream os;
    os << "periods (" << model.period_i << ", " << model.period_j
       << ") must be multiples of the bank geometry (" << model.p << ", "
       << model.q << ")";
    return violation(CheckKind::kPeriodicity, os.str());
  }
  for (std::int64_t i = -model.period_i; i < 2 * model.period_i; ++i) {
    for (std::int64_t j = -model.period_j; j < 2 * model.period_j; ++j) {
      const unsigned b = model.bank(i, j);
      if (model.bank(i + model.period_i, j) != b) {
        std::ostringstream os;
        os << "bank" << coord_str(i + model.period_i, j) << " = "
           << model.bank(i + model.period_i, j) << " != bank"
           << coord_str(i, j) << " = " << b << "; claimed period_i = "
           << model.period_i << " is not a period";
        return violation(CheckKind::kPeriodicity, os.str());
      }
      if (model.bank(i, j + model.period_j) != b) {
        std::ostringstream os;
        os << "bank" << coord_str(i, j + model.period_j) << " = "
           << model.bank(i, j + model.period_j) << " != bank"
           << coord_str(i, j) << " = " << b << "; claimed period_j = "
           << model.period_j << " is not a period";
        return violation(CheckKind::kPeriodicity, os.str());
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_conflict_freedom(const MafModel& model,
                                                PatternKind pattern,
                                                bool aligned_only) {
  require_model(model);
  const unsigned n = model.banks();
  std::vector<Coord> el;
  // lane_of[b]: the first lane observed on bank b at the current anchor
  // (n when unseen) — yields the offending lane *pair* on a collision.
  std::vector<unsigned> lane_of(n, n);
  const std::int64_t step_i = aligned_only ? model.p : 1;
  const std::int64_t step_j = aligned_only ? model.q : 1;
  for (std::int64_t a = 0; a < model.period_i; a += step_i) {
    for (std::int64_t b = 0; b < model.period_j; b += step_j) {
      access::expand_into({pattern, {a, b}}, model.p, model.q, el);
      std::fill(lane_of.begin(), lane_of.end(), n);
      for (unsigned k = 0; k < el.size(); ++k) {
        const unsigned bank = model.bank(el[k].i, el[k].j);
        if (bank >= n) {
          std::ostringstream os;
          os << "pattern " << access::pattern_name(pattern) << " at "
             << coord_str(a, b) << ": lane " << k << " element "
             << coord_str(el[k].i, el[k].j) << " maps to bank " << bank
             << " outside [0, " << n << ")";
          return violation(CheckKind::kConflictFreedom, os.str());
        }
        if (lane_of[bank] != n) {
          std::ostringstream os;
          os << "pattern " << access::pattern_name(pattern) << " at "
             << (aligned_only ? "aligned " : "") << "anchor "
             << coord_str(a, b) << ": lanes " << lane_of[bank] << " and "
             << k << " (elements " << coord_str(el[lane_of[bank]].i,
                                                el[lane_of[bank]].j)
             << " and " << coord_str(el[k].i, el[k].j)
             << ") both map to bank " << bank;
          return violation(CheckKind::kConflictFreedom, os.str());
        }
        lane_of[bank] = k;
      }
    }
  }
  return std::nullopt;
}

std::optional<Violation> check_address_injectivity(
    const MafModel& model,
    const std::function<std::int64_t(std::int64_t, std::int64_t)>& address,
    std::int64_t height, std::int64_t width, std::int64_t words_per_bank) {
  require_model(model);
  POLYMEM_REQUIRE(static_cast<bool>(address),
                  "prover needs an address function");
  POLYMEM_REQUIRE(height >= 1 && width >= 1 && words_per_bank >= 1,
                  "prover needs a non-empty address space");
  const unsigned n = model.banks();
  if (height * width != static_cast<std::int64_t>(n) * words_per_bank) {
    std::ostringstream os;
    os << height << 'x' << width << " elements cannot fill " << n
       << " banks of " << words_per_bank << " words bijectively";
    return violation(CheckKind::kAddressInjectivity, os.str());
  }
  // first_at[bank * wpb + addr]: first element claiming the slot (-1 free).
  std::vector<std::int64_t> first_at(
      static_cast<std::size_t>(n) * words_per_bank, -1);
  for (std::int64_t i = 0; i < height; ++i) {
    for (std::int64_t j = 0; j < width; ++j) {
      const unsigned bank = model.bank(i, j);
      if (bank >= n) {
        std::ostringstream os;
        os << "bank" << coord_str(i, j) << " = " << bank << " escapes [0, "
           << n << ")";
        return violation(CheckKind::kAddressInjectivity, os.str());
      }
      const std::int64_t addr = address(i, j);
      if (addr < 0 || addr >= words_per_bank) {
        std::ostringstream os;
        os << "address" << coord_str(i, j) << " = " << addr
           << " escapes [0, " << words_per_bank << ")";
        return violation(CheckKind::kAddressInjectivity, os.str());
      }
      std::int64_t& slot = first_at[bank * words_per_bank + addr];
      if (slot >= 0) {
        std::ostringstream os;
        os << "elements " << coord_str(slot / width, slot % width) << " and "
           << coord_str(i, j) << " both occupy bank " << bank << " word "
           << addr;
        return violation(CheckKind::kAddressInjectivity, os.str());
      }
      slot = i * width + j;
    }
  }
  // Slot counting: H*W injective placements into exactly H*W slots is a
  // bijection, so no separate surjectivity pass is needed.
  return std::nullopt;
}

std::optional<Violation> check_template_agreement(
    const core::PolyMemConfig& config) {
  config.validate();
  const maf::Maf maf(config.scheme, config.p, config.q);
  const maf::AddressingFunction addressing(config.p, config.q, config.height,
                                           config.width);
  core::PlanCache cache(config, maf, addressing);
  if (!cache.enabled()) return std::nullopt;  // nothing cached to verify
  const core::Agu agu(config, maf, addressing);
  const std::int64_t pi = cache.period_i();
  const std::int64_t pj = cache.period_j();
  core::AccessPlan naive;
  for (PatternKind pattern : access::kAllPatterns) {
    const maf::SupportLevel level = maf::probe_support(maf, pattern);
    if (level == maf::SupportLevel::kNone) continue;
    const bool aligned = level == maf::SupportLevel::kAligned;
    const std::int64_t step_i = aligned ? config.p : 1;
    const std::int64_t step_j = aligned ? config.q : 1;
    const auto ext = access::pattern_extent(pattern, config.p, config.q);
    const std::int64_t min_j = -ext.col_offset;
    const std::int64_t max_i = config.height - ext.rows;
    const std::int64_t max_j = config.width - ext.cols - ext.col_offset;
    for (std::int64_t ri = 0; ri < pi; ri += step_i) {
      for (std::int64_t rj = 0; rj < pj; rj += step_j) {
        // The smallest in-bounds anchor of the residue class; classes with
        // no valid anchor have no template to verify.
        std::int64_t ai = ri;
        std::int64_t aj = rj;
        while (aj < min_j) aj += pj;
        if (ai > max_i || aj > max_j) continue;
        const access::ParallelAccess acc{pattern, {ai, aj}};
        std::int64_t delta = 0;
        const core::PlanTemplate* tmpl = cache.lookup(acc, delta);
        if (tmpl == nullptr) {
          std::ostringstream os;
          os << "plan cache refused supported access "
             << access::pattern_name(pattern) << " at " << coord_str(ai, aj);
          return violation(CheckKind::kTemplateAgreement, os.str());
        }
        agu.expand_into(acc, naive);
        for (unsigned k = 0; k < naive.lanes(); ++k) {
          if (tmpl->bank[k] != naive.bank[k]) {
            std::ostringstream os;
            os << access::pattern_name(pattern) << " at " << coord_str(ai, aj)
               << " lane " << k << ": template bank " << tmpl->bank[k]
               << " != naive bank " << naive.bank[k];
            return violation(CheckKind::kTemplateAgreement, os.str());
          }
          if (tmpl->addr0[k] + delta != naive.addr[k]) {
            std::ostringstream os;
            os << access::pattern_name(pattern) << " at " << coord_str(ai, aj)
               << " lane " << k << ": template address "
               << tmpl->addr0[k] + delta << " != naive address "
               << naive.addr[k];
            return violation(CheckKind::kTemplateAgreement, os.str());
          }
          if (tmpl->lane_for_bank[tmpl->bank[k]] != k ||
              tmpl->bank_addr0[tmpl->bank[k]] != tmpl->addr0[k]) {
            std::ostringstream os;
            os << access::pattern_name(pattern) << " at " << coord_str(ai, aj)
               << " lane " << k << ": inverse permutation or per-bank "
               << "addresses inconsistent for bank " << tmpl->bank[k];
            return violation(CheckKind::kTemplateAgreement, os.str());
          }
        }
      }
    }
  }
  return std::nullopt;
}

maf::SupportLevel prove_support(const MafModel& model, PatternKind pattern,
                                std::string* counterexample) {
  const auto any = check_conflict_freedom(model, pattern, false);
  if (!any.has_value()) return maf::SupportLevel::kAny;
  if (counterexample != nullptr) *counterexample = any->message;
  const auto aligned = check_conflict_freedom(model, pattern, true);
  if (!aligned.has_value()) return maf::SupportLevel::kAligned;
  return maf::SupportLevel::kNone;
}

std::optional<Violation> check_affine_form(const SymbolicMaf& sym,
                                           const maf::Maf& maf) {
  const std::string mismatch = validate_symbolic_maf(sym, maf);
  if (mismatch.empty()) return std::nullopt;
  return violation(CheckKind::kAffineForm,
                   "symbolic normal form disagrees with the concrete MAF at " +
                       mismatch);
}

std::optional<Violation> check_affine_differential(const maf::Maf& maf,
                                                   const SymbolicMaf& sym,
                                                   const AffinePattern& pattern,
                                                   AnchorClass anchors) {
  const AffineVerdict symbolic = prove_conflict_free(sym, pattern, anchors);
  const AffineVerdict swept = sweep_conflict_free(maf, pattern, anchors);
  std::ostringstream os;
  os << "pattern '" << pattern.spec() << "' [" << anchor_class_name(anchors)
     << " anchors]: ";
  if (symbolic.degenerate.empty() != swept.degenerate.empty()) {
    os << "symbolic prover "
       << (symbolic.degenerate.empty()
               ? "accepts a pattern the sweep rejects as degenerate ("
                     + swept.degenerate + ")"
               : "rejects as degenerate (" + symbolic.degenerate +
                     ") a pattern the sweep accepts");
    return violation(CheckKind::kAffineDifferential, os.str());
  }
  if (!symbolic.degenerate.empty()) return std::nullopt;  // both degenerate
  if (symbolic.conflict_free != swept.conflict_free) {
    os << "symbolic verdict "
       << (symbolic.conflict_free ? "conflict-free" : "conflict") << " != "
       << "swept verdict "
       << (swept.conflict_free ? "conflict-free" : "conflict");
    if (symbolic.counterexample.has_value())
      os << "; symbolic witness: " << symbolic.counterexample->str();
    if (swept.counterexample.has_value())
      os << "; sweep witness: " << swept.counterexample->str();
    return violation(CheckKind::kAffineDifferential, os.str());
  }
  if (symbolic.counterexample.has_value()) {
    // Replay the symbolic witness against the *concrete* bank function:
    // lane offsets must reproduce the claimed elements, the anchor must
    // respect the class, and both elements must really share a bank.
    const AffineCounterexample& cx = *symbolic.counterexample;
    const auto element = [&pattern](access::Coord anchor, std::int64_t lane) {
      return pattern.element(anchor, lane / pattern.lanes_v,
                             lane % pattern.lanes_v);
    };
    if (element(cx.anchor, cx.lane_a) != cx.elem_a ||
        element(cx.anchor, cx.lane_b) != cx.elem_b) {
      os << "counterexample elements do not match the lane map: "
         << cx.str();
      return violation(CheckKind::kAffineDifferential, os.str());
    }
    if (anchors == AnchorClass::kAligned &&
        (floormod<std::int64_t>(cx.anchor.i, maf.p()) != 0 ||
         floormod<std::int64_t>(cx.anchor.j, maf.q()) != 0)) {
      os << "counterexample anchor is not " << maf.p() << '/' << maf.q()
         << "-aligned: " << cx.str();
      return violation(CheckKind::kAffineDifferential, os.str());
    }
    if (maf.bank(cx.elem_a) != maf.bank(cx.elem_b) ||
        maf.bank(cx.elem_a) != cx.bank) {
      os << "counterexample does not replay: concrete banks are "
         << maf.bank(cx.elem_a) << " and " << maf.bank(cx.elem_b)
         << " for claimed " << cx.str();
      return violation(CheckKind::kAffineDifferential, os.str());
    }
  }
  return std::nullopt;
}

AffineReport prove_affine_pattern(const maf::Maf& maf, const SymbolicMaf& sym,
                                  const AffinePattern& pattern) {
  AffineReport report;
  report.scheme = maf.scheme();
  report.p = maf.p();
  report.q = maf.q();
  report.pattern = pattern;
  if (auto v = check_affine_form(sym, maf)) report.violations.push_back(*v);

  const AffineVerdict any = prove_conflict_free(sym, pattern,
                                                AnchorClass::kAny);
  if (!any.degenerate.empty()) {
    report.violations.push_back(violation(
        CheckKind::kAffineDegenerate,
        "pattern '" + pattern.spec() + "' is degenerate: " + any.degenerate));
    return report;
  }
  AffineCounterexample cx;
  report.proven = prove_affine_support(sym, pattern, &cx);
  if (report.proven != maf::SupportLevel::kAny) report.counterexample = cx;
  if (report.proven == maf::SupportLevel::kNone) {
    report.violations.push_back(violation(
        CheckKind::kAffineConflict,
        "pattern '" + pattern.spec() + "' collides under " +
            maf::scheme_name(maf.scheme()) + ": " + cx.str()));
  }
  // Every symbolic verdict ships differentially validated against the
  // brute-force sweep — the CLI result is never a single algorithm's word.
  for (const AnchorClass anchors :
       {AnchorClass::kAny, AnchorClass::kAligned}) {
    if (auto v = check_affine_differential(maf, sym, pattern, anchors))
      report.violations.push_back(*v);
  }
  report.ok = report.proven != maf::SupportLevel::kNone &&
              report.violations.empty();
  return report;
}

AffineReport prove_affine_pattern(maf::Scheme scheme, unsigned p, unsigned q,
                                  const AffinePattern& pattern) {
  try {
    const maf::Maf maf(scheme, p, q);
    return prove_affine_pattern(maf, SymbolicMaf::of(maf), pattern);
  } catch (const Error& e) {
    AffineReport report;
    report.scheme = scheme;
    report.p = p;
    report.q = q;
    report.pattern = pattern;
    report.violations.push_back(violation(CheckKind::kConstruction, e.what()));
    return report;
  }
}

std::string AffineReport::summary() const {
  std::ostringstream os;
  os << "affine proof: " << maf::scheme_name(scheme) << ' ' << p << 'x' << q
     << ", pattern '" << pattern.spec() << "'\n";
  os << "  proven support: " << maf::support_level_name(proven) << '\n';
  if (counterexample.has_value())
    os << "  counterexample: " << counterexample->str() << '\n';
  for (const Violation& v : violations)
    os << "  violation: " << v.message << '\n';
  os << "result: "
     << (ok ? (proven == maf::SupportLevel::kAligned
                   ? "PROVEN (aligned anchors)"
                   : "PROVEN (any anchor)")
            : "REFUTED");
  return os.str();
}

namespace {

void prove_patterns(const maf::Maf& maf, ProverReport& report) {
  const MafModel model = model_of(maf);
  const auto advertised = maf::advertised_patterns(maf.scheme());
  for (PatternKind pattern : access::kAllPatterns) {
    PatternProof proof;
    proof.pattern = pattern;
    proof.claimed = maf::probe_support(maf, pattern);
    proof.proven = prove_support(model, pattern, &proof.detail);
    proof.advertised =
        std::find(advertised.begin(), advertised.end(), pattern) !=
        advertised.end();
    proof.ok = proof.proven == proof.claimed &&
               (!proof.advertised || proof.proven != maf::SupportLevel::kNone);
    if (!proof.ok) {
      std::ostringstream os;
      os << "pattern " << access::pattern_name(pattern) << ": proven "
         << maf::support_level_name(proof.proven) << ", oracle claims "
         << maf::support_level_name(proof.claimed)
         << (proof.advertised ? " (advertised by the scheme)" : "");
      if (!proof.detail.empty()) os << "; " << proof.detail;
      report.violations.push_back(
          violation(CheckKind::kConflictFreedom, os.str()));
    }
    report.patterns.push_back(std::move(proof));
  }
}

// The brute-force analogue of prove_affine_support: the support level the
// period-lattice sweep establishes for an affine pattern.
maf::SupportLevel sweep_affine_support(const maf::Maf& maf,
                                       const AffinePattern& pattern) {
  const AffineVerdict any = sweep_conflict_free(maf, pattern,
                                                AnchorClass::kAny);
  if (any.ok()) return maf::SupportLevel::kAny;
  if (!any.degenerate.empty()) return maf::SupportLevel::kNone;
  const AffineVerdict aligned = sweep_conflict_free(maf, pattern,
                                                    AnchorClass::kAligned);
  return aligned.ok() ? maf::SupportLevel::kAligned
                      : maf::SupportLevel::kNone;
}

// PMV008 + PMV009 for one configuration: validates the symbolic normal
// form, then differentially checks the symbolic verdict for every pattern
// of the canonical affine suite against the brute-force sweep.
void prove_affine_suite(const maf::Maf& maf, ProverReport& report) {
  const SymbolicMaf sym = SymbolicMaf::of(maf);
  if (auto v = check_affine_form(sym, maf)) report.violations.push_back(*v);
  for (const AffinePattern& pattern :
       canonical_affine_suite(maf.p(), maf.q())) {
    AffineProof proof;
    proof.pattern = pattern;
    AffineCounterexample cx;
    proof.proven = prove_affine_support(sym, pattern, &cx);
    if (proof.proven != maf::SupportLevel::kAny) proof.counterexample = cx;
    proof.swept = sweep_affine_support(maf, pattern);
    proof.ok = proof.proven == proof.swept;
    for (const AnchorClass anchors :
         {AnchorClass::kAny, AnchorClass::kAligned}) {
      if (auto v = check_affine_differential(maf, sym, pattern, anchors)) {
        proof.ok = false;
        report.violations.push_back(*v);
      }
    }
    if (proof.proven != proof.swept) {
      std::ostringstream os;
      os << "pattern '" << pattern.spec() << "': symbolic support "
         << maf::support_level_name(proof.proven) << " != swept support "
         << maf::support_level_name(proof.swept);
      report.violations.push_back(
          violation(CheckKind::kAffineDifferential, os.str()));
    }
    report.affine.push_back(std::move(proof));
  }
}

}  // namespace

ProverReport prove(const core::PolyMemConfig& config) {
  ProverReport report;
  report.scheme = config.scheme;
  report.p = config.p;
  report.q = config.q;
  try {
    config.validate();
    const maf::Maf maf(config.scheme, config.p, config.q);
    report.period_i = maf.period_i();
    report.period_j = maf.period_j();
    const MafModel model = model_of(maf);
    if (auto v = check_bank_range(model)) report.violations.push_back(*v);
    if (auto v = check_periodicity(model)) report.violations.push_back(*v);
    prove_patterns(maf, report);
    prove_affine_suite(maf, report);
    const maf::AddressingFunction addressing(config.p, config.q,
                                             config.height, config.width);
    auto address = [&addressing](std::int64_t i, std::int64_t j) {
      return addressing.address(i, j);
    };
    if (auto v = check_address_injectivity(model, address, config.height,
                                           config.width,
                                           addressing.words_per_bank()))
      report.violations.push_back(*v);
    if (auto v = check_template_agreement(config))
      report.violations.push_back(*v);
  } catch (const Error& e) {
    report.violations.push_back(
        violation(CheckKind::kConstruction, e.what()));
  }
  report.ok = report.violations.empty();
  return report;
}

ProverReport prove(maf::Scheme scheme, unsigned p, unsigned q) {
  core::PolyMemConfig config;
  config.scheme = scheme;
  config.p = p;
  config.q = q;
  try {
    // A minimal space covering every residue class of every pattern: tall
    // enough for a full column (p*q rows) anchored at the largest i
    // residue, wide enough for a secondary diagonal at the largest j
    // residue. Construction failures fall through to prove(config)'s
    // reporting with the placeholder shape.
    const maf::Maf maf(scheme, p, q);
    const std::int64_t n = static_cast<std::int64_t>(p) * q;
    config.height = round_up<std::int64_t>(maf.period_i() + n, p);
    config.width = round_up<std::int64_t>(maf.period_j() + 2 * n, q);
  } catch (const Error&) {
    config.height = p;
    config.width = q;
  }
  return prove(config);
}

std::string ProverReport::summary() const {
  std::ostringstream os;
  os << "static proof: " << maf::scheme_name(scheme) << ' ' << p << 'x' << q
     << " (periods i=" << period_i << ", j=" << period_j << ")\n";
  for (const PatternProof& proof : patterns) {
    os << "  " << (proof.ok ? "[PASS] " : "[FAIL] ") << "pattern "
       << access::pattern_name(proof.pattern) << ": proven "
       << maf::support_level_name(proof.proven) << " (oracle "
       << maf::support_level_name(proof.claimed) << ')'
       << (proof.advertised ? " [advertised]" : "") << '\n';
  }
  for (const AffineProof& proof : affine) {
    os << "  " << (proof.ok ? "[PASS] " : "[FAIL] ") << "affine "
       << proof.pattern.name << ": symbolic "
       << maf::support_level_name(proof.proven) << " (swept "
       << maf::support_level_name(proof.swept) << ')' << '\n';
  }
  for (const Violation& v : violations)
    os << "  violation: " << v.message << '\n';
  os << "result: " << (ok ? "PROVEN" : "REFUTED");
  return os.str();
}

}  // namespace polymem::verify
