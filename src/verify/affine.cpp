#include "verify/affine.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"

namespace polymem::verify {

using access::PatternKind;

namespace {

// Appends "± c*var" to the stream, eliding unit coefficients.
void append_term(std::ostringstream& os, bool& first, std::int64_t c,
                 const char* var) {
  if (c == 0) return;
  if (first) {
    if (c < 0) os << '-';
  } else {
    os << (c < 0 ? " - " : " + ");
  }
  const std::int64_t mag = c < 0 ? -c : c;
  if (mag != 1 || var == nullptr) {
    os << mag;
    if (var != nullptr) os << '*';
  }
  if (var != nullptr) os << var;
  first = false;
}

}  // namespace

std::string LaneExpr::str() const {
  std::ostringstream os;
  bool first = true;
  append_term(os, first, cu, "u");
  append_term(os, first, cv, "v");
  append_term(os, first, c0, nullptr);
  if (first) os << '0';
  return os.str();
}

AffinePattern::Box AffinePattern::bounding_box() const {
  Box box;
  bool first = true;
  for (int corner = 0; corner < 4; ++corner) {
    const std::int64_t u = (corner & 1) ? lanes_u - 1 : 0;
    const std::int64_t v = (corner & 2) ? lanes_v - 1 : 0;
    const std::int64_t ci = i.eval(u, v);
    const std::int64_t cj = j.eval(u, v);
    if (first) {
      box = {ci, ci, cj, cj};
      first = false;
    } else {
      box.min_i = std::min(box.min_i, ci);
      box.max_i = std::max(box.max_i, ci);
      box.min_j = std::min(box.min_j, cj);
      box.max_j = std::max(box.max_j, cj);
    }
  }
  return box;
}

std::string AffinePattern::invalid_reason() const {
  if (lanes_u < 1 || lanes_v < 1) {
    std::ostringstream os;
    os << "lane grid " << lanes_u << 'x' << lanes_v << " is empty";
    return os.str();
  }
  constexpr std::int64_t kMaxLanes = 1 << 20;
  if (count() > kMaxLanes) {
    std::ostringstream os;
    os << "lane grid " << lanes_u << 'x' << lanes_v << " exceeds "
       << kMaxLanes << " lanes";
    return os.str();
  }
  return {};
}

std::string AffinePattern::spec() const {
  std::ostringstream os;
  os << "lanes " << lanes_u << 'x' << lanes_v << " ; i = " << i.str()
     << " ; j = " << j.str();
  return os.str();
}

AffinePattern AffinePattern::of(PatternKind kind, unsigned p, unsigned q) {
  const auto n = static_cast<std::int64_t>(p) * q;
  AffinePattern pat;
  pat.name = access::pattern_name(kind);
  switch (kind) {
    case PatternKind::kRow:
      pat.lanes_u = 1;
      pat.lanes_v = n;
      pat.j = {0, 1, 0};
      return pat;
    case PatternKind::kCol:
      pat.lanes_u = n;
      pat.lanes_v = 1;
      pat.i = {1, 0, 0};
      return pat;
    case PatternKind::kRect:
      pat.lanes_u = p;
      pat.lanes_v = q;
      pat.i = {1, 0, 0};
      pat.j = {0, 1, 0};
      return pat;
    case PatternKind::kTRect:
      pat.lanes_u = q;
      pat.lanes_v = p;
      pat.i = {1, 0, 0};
      pat.j = {0, 1, 0};
      return pat;
    case PatternKind::kMainDiag:
      pat.lanes_u = n;
      pat.lanes_v = 1;
      pat.i = {1, 0, 0};
      pat.j = {1, 0, 0};
      return pat;
    case PatternKind::kSecDiag:
      pat.lanes_u = n;
      pat.lanes_v = 1;
      pat.i = {1, 0, 0};
      pat.j = {-1, 0, 0};
      return pat;
  }
  throw InvalidArgument("unknown pattern kind");
}

namespace {

[[noreturn]] void spec_fail(const std::string& text, const std::string& why) {
  throw InvalidArgument("cannot parse affine spec '" + text + "': " + why);
}

// Splits the clause into tokens, treating = + - * as their own tokens so
// "i=3*v-1" and "i = 3 * v - 1" parse identically.
std::vector<std::string> lex(const std::string& clause) {
  std::vector<std::string> tokens;
  std::string cur;
  for (const char c : clause) {
    if (c == ' ' || c == '\t' || c == '=' || c == '+' || c == '-' ||
        c == '*') {
      if (!cur.empty()) tokens.push_back(cur);
      cur.clear();
      if (c != ' ' && c != '\t') tokens.emplace_back(1, c);
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) tokens.push_back(cur);
  return tokens;
}

bool parse_int(const std::string& tok, std::int64_t& out) {
  if (tok.empty()) return false;
  std::istringstream in(tok);
  // Extract into a local: a failed stream extraction zeroes its target,
  // which must not clobber `out` (callers keep their default on failure).
  std::int64_t value = 0;
  if (!(in >> value) || !in.eof()) return false;
  out = value;
  return true;
}

LaneExpr parse_expr(const std::string& text,
                    const std::vector<std::string>& tokens, std::size_t at) {
  LaneExpr expr;
  bool any = false;
  std::size_t t = at;
  while (t < tokens.size()) {
    std::int64_t sign = 1;
    while (t < tokens.size() && (tokens[t] == "+" || tokens[t] == "-")) {
      if (tokens[t] == "-") sign = -sign;
      ++t;
    }
    if (t >= tokens.size()) spec_fail(text, "dangling sign in expression");
    std::int64_t coef = 1;
    bool have_coef = false;
    if (parse_int(tokens[t], coef)) {
      have_coef = true;
      ++t;
      if (t < tokens.size() && tokens[t] == "*") {
        ++t;
        if (t >= tokens.size()) spec_fail(text, "dangling '*' in expression");
      } else {
        expr.c0 += sign * coef;  // bare constant term
        any = true;
        continue;
      }
    }
    if (tokens[t] == "u") {
      expr.cu += sign * coef;
    } else if (tokens[t] == "v") {
      expr.cv += sign * coef;
    } else {
      spec_fail(text, "expected 'u' or 'v', got '" + tokens[t] + "'" +
                          (have_coef ? " after coefficient" : ""));
    }
    ++t;
    any = true;
  }
  if (!any) spec_fail(text, "empty expression");
  return expr;
}

}  // namespace

AffinePattern AffinePattern::parse(const std::string& text) {
  // Clauses are ';'-separated: lanes UxV ; i = expr ; j = expr.
  std::vector<std::string> clauses;
  std::string cur;
  for (const char c : text) {
    if (c == ';') {
      clauses.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  clauses.push_back(cur);

  AffinePattern pat;
  bool saw_lanes = false, saw_i = false, saw_j = false;
  for (const std::string& clause : clauses) {
    const auto tokens = lex(clause);
    if (tokens.empty()) continue;
    if (tokens[0] == "lanes") {
      if (tokens.size() != 2) spec_fail(text, "expected 'lanes <U>x<V>'");
      const std::string& dims = tokens[1];
      const auto x = dims.find('x');
      if (x == std::string::npos || !parse_int(dims.substr(0, x), pat.lanes_u) ||
          !parse_int(dims.substr(x + 1), pat.lanes_v))
        spec_fail(text, "expected 'lanes <U>x<V>', got '" + dims + "'");
      saw_lanes = true;
    } else if (tokens[0] == "i" || tokens[0] == "j") {
      if (tokens.size() < 3 || tokens[1] != "=")
        spec_fail(text, "expected '" + tokens[0] + " = <expr>'");
      const LaneExpr expr = parse_expr(text, tokens, 2);
      (tokens[0] == "i" ? pat.i : pat.j) = expr;
      (tokens[0] == "i" ? saw_i : saw_j) = true;
    } else {
      spec_fail(text, "unknown clause '" + tokens[0] + "'");
    }
  }
  if (!saw_lanes) spec_fail(text, "missing 'lanes <U>x<V>' clause");
  if (!saw_i || !saw_j)
    spec_fail(text, "missing 'i = <expr>' or 'j = <expr>' clause");
  pat.name = pat.spec();
  return pat;
}

std::int64_t MafForm::eval(std::int64_t i, std::int64_t j) const {
  const std::int64_t raw = ci * i + cI * floordiv(i, div_i) + cj * j +
                           cJ * floordiv(j, div_j);
  return floormod(raw, modulus);
}

unsigned SymbolicMaf::bank(std::int64_t i, std::int64_t j) const {
  std::int64_t b = 0;
  for (const MafForm& form : forms) b += form.weight * form.eval(i, j);
  return static_cast<unsigned>(b);
}

SymbolicMaf SymbolicMaf::of(const maf::Maf& maf) {
  SymbolicMaf sym;
  sym.p = maf.p();
  sym.q = maf.q();
  const auto p = static_cast<std::int64_t>(maf.p());
  const auto q = static_cast<std::int64_t>(maf.q());
  const std::int64_t n = p * q;
  switch (maf.scheme()) {
    case maf::Scheme::kReO:
      sym.forms = {{1, 0, 1, 0, 0, 1, p, q}, {0, 0, 1, 1, 0, 1, q, 1}};
      return sym;
    case maf::Scheme::kReRo:
      sym.forms = {{1, 0, 1, 0, 1, q, p, q}, {0, 0, 1, 1, 0, 1, q, 1}};
      return sym;
    case maf::Scheme::kReCo:
      sym.forms = {{1, 0, 1, 0, 0, 1, p, q}, {0, 1, p, 1, 0, 1, q, 1}};
      return sym;
    case maf::Scheme::kRoCo:
      sym.forms = {{1, 0, 1, 0, 1, q, p, q}, {0, 1, p, 1, 0, 1, q, 1}};
      return sym;
    case maf::Scheme::kReTr: {
      const auto coeff = maf.retr_coefficients();
      POLYMEM_ASSERT(coeff.has_value());
      const auto a = static_cast<std::int64_t>(coeff->a);
      const auto b = static_cast<std::int64_t>(coeff->b);
      const std::int64_t s = std::min(p, q);
      if (p > q) {
        // Transposed form: bank = (i + a·⌊i/s⌋ + b·j) mod n.
        sym.forms = {{1, a, s, b, 0, 1, n, 1}};
      } else {
        // bank = (j + a·⌊j/s⌋ + b·i) mod n.
        sym.forms = {{b, 0, 1, 1, a, s, n, 1}};
      }
      return sym;
    }
  }
  throw InvalidArgument("unknown scheme");
}

std::string AffineCounterexample::str() const {
  std::ostringstream os;
  os << "anchor " << anchor << ": lanes " << lane_a << " and " << lane_b
     << " (elements " << elem_a << " and " << elem_b << ") both map to bank "
     << bank;
  return os.str();
}

}  // namespace polymem::verify
