// Affine access-pattern IR and the symbolic MAF normal form.
//
// The Table-I pattern families (access/pattern.hpp) are six fixed shapes;
// every one of them — and every user-defined strided/skewed variant — is
// an instance of one algebraic object: a *lane lattice* t = (u, v) with
// u in [0, U), v in [0, V), and an affine index map
//
//   element(u, v) = anchor + (A·t + b)
//                 = anchor + (a_iu·u + a_iv·v + b_i,  a_ju·u + a_jv·v + b_j)
//
// The anchor stays parametric: the symbolic prover
// (verify/affine_prover.hpp) decides conflict-freedom for *every* anchor
// (or every p/q-aligned anchor) at once, so admitting a new workload never
// requires a per-matrix sweep.
//
// The dual object is the MAF itself in algebraic normal form: every bank
// function this library ships is a sum of mixed-radix digits
//
//   bank(i, j) = Σ_f weight_f · ((c_i·i + c_I·⌊i/D_i⌋ + c_j·j + c_J·⌊j/D_j⌋)
//                                mod m_f)
//
// (the multiview schemes are two digits mod p and mod q; ReTr is a single
// digit mod p·q). `SymbolicMaf::of` extracts the form from a production
// `maf::Maf`, and the prover works on the form, never on pointwise
// evaluation — which is what makes anchor-parametric proofs possible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "access/coord.hpp"
#include "access/pattern.hpp"
#include "maf/maf.hpp"

namespace polymem::verify {

/// A linear form c_u·u + c_v·v + c_0 over the lane lattice.
struct LaneExpr {
  std::int64_t cu = 0;
  std::int64_t cv = 0;
  std::int64_t c0 = 0;

  std::int64_t eval(std::int64_t u, std::int64_t v) const {
    return cu * u + cv * v + c0;
  }

  /// Renders the form in the spec grammar, e.g. "2*u - v + 1" or "0".
  std::string str() const;

  friend bool operator==(const LaneExpr&, const LaneExpr&) = default;
};

/// An affine parallel-access pattern: U x V lanes, each offset from the
/// (parametric) anchor by an affine function of its lattice position.
/// Lane (u, v) has flat id u·V + v — the canonical DataIn/DataOut port
/// order, matching access::expand for the Table-I families.
struct AffinePattern {
  std::string name;  ///< display name; the spec string when parsed
  std::int64_t lanes_u = 1;
  std::int64_t lanes_v = 1;
  LaneExpr i;  ///< row offset of lane (u, v) from the anchor
  LaneExpr j;  ///< column offset of lane (u, v) from the anchor

  std::int64_t count() const { return lanes_u * lanes_v; }
  std::int64_t flat(std::int64_t u, std::int64_t v) const {
    return u * lanes_v + v;
  }

  /// Element coordinate of lane (u, v) for a concrete anchor.
  access::Coord element(access::Coord anchor, std::int64_t u,
                        std::int64_t v) const {
    return {anchor.i + i.eval(u, v), anchor.j + j.eval(u, v)};
  }

  /// Inclusive offset bounding box over the whole lane lattice. Offsets
  /// are affine in (u, v), so the extremes occur at the lattice corners.
  struct Box {
    std::int64_t min_i = 0, max_i = 0;
    std::int64_t min_j = 0, max_j = 0;
  };
  Box bounding_box() const;

  /// Empty when the pattern is well-formed; otherwise the reason it can
  /// never be proven (non-positive or oversized lane grid).
  std::string invalid_reason() const;

  /// The spec-grammar rendering: "lanes UxV ; i = <expr> ; j = <expr>".
  std::string spec() const;

  /// The Table-I family as an affine pattern for a p x q geometry.
  static AffinePattern of(access::PatternKind kind, unsigned p, unsigned q);

  /// Parses the spec grammar (whitespace-insensitive):
  ///
  ///   spec   := "lanes" <U> "x" <V> ";" "i" "=" expr ";" "j" "=" expr
  ///   expr   := ["+"|"-"] term { ("+"|"-") term }
  ///   term   := int "*" var | var | int      var := "u" | "v"
  ///
  /// e.g. "lanes 1x8 ; i = 0 ; j = 3*v" is a stride-3 row of 8 lanes.
  /// Throws InvalidArgument with the offending token on malformed input.
  static AffinePattern parse(const std::string& text);

  friend bool operator==(const AffinePattern&, const AffinePattern&) = default;
};

/// One mixed-radix digit of a bank function:
/// value = (ci·i + cI·⌊i/div_i⌋ + cj·j + cJ·⌊j/div_j⌋) mod modulus.
struct MafForm {
  std::int64_t ci = 0;
  std::int64_t cI = 0;
  std::int64_t div_i = 1;
  std::int64_t cj = 0;
  std::int64_t cJ = 0;
  std::int64_t div_j = 1;
  std::int64_t modulus = 1;
  std::int64_t weight = 1;

  std::int64_t eval(std::int64_t i, std::int64_t j) const;
};

/// A bank function in algebraic normal form: bank = Σ weight_f · digit_f.
/// The digits form a mixed-radix system (Σ weight_f·(m_f − 1) < Σ ranges
/// stay disjoint), so bank equality is digit-wise congruence — the fact
/// the symbolic prover exploits.
struct SymbolicMaf {
  unsigned p = 0;
  unsigned q = 0;
  std::vector<MafForm> forms;

  unsigned banks() const { return p * q; }
  unsigned bank(std::int64_t i, std::int64_t j) const;

  /// Extracts the normal form of a production MAF (all five schemes).
  static SymbolicMaf of(const maf::Maf& maf);
};

/// A concrete, replayable collision witness: at `anchor`, lanes `lane_a`
/// and `lane_b` (flat ids) touch `elem_a`/`elem_b`, both stored in `bank`.
struct AffineCounterexample {
  access::Coord anchor;
  std::int64_t lane_a = 0;
  std::int64_t lane_b = 0;
  access::Coord elem_a;
  access::Coord elem_b;
  unsigned bank = 0;

  /// "anchor (1,2): lanes 3 and 7 (elements (1,5) and (2,6)) both map to
  /// bank 4"
  std::string str() const;
};

}  // namespace polymem::verify
