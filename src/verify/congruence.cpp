#include "verify/congruence.hpp"

#include "common/error.hpp"
#include "common/math.hpp"

namespace polymem::verify {

Egcd egcd(std::int64_t a, std::int64_t b) {
  // Iterative extended Euclid on (a, b); signs are folded back at the end
  // so the invariant a*x + b*y == g holds for negative inputs too.
  std::int64_t old_r = a < 0 ? -a : a, r = b < 0 ? -b : b;
  std::int64_t old_x = 1, x = 0;
  std::int64_t old_y = 0, y = 1;
  while (r != 0) {
    const std::int64_t qt = old_r / r;
    std::int64_t t = old_r - qt * r;
    old_r = r;
    r = t;
    t = old_x - qt * x;
    old_x = x;
    x = t;
    t = old_y - qt * y;
    old_y = y;
    y = t;
  }
  if (a < 0) old_x = -old_x;
  if (b < 0) old_y = -old_y;
  return {old_r, old_x, old_y};
}

bool ResidueClass::contains(std::int64_t x) const {
  return floormod(x - residue, modulus) == 0;
}

std::int64_t ResidueClass::first_at_least(std::int64_t lo) const {
  return lo + floormod(residue - lo, modulus);
}

std::optional<ResidueClass> solve_congruence(std::int64_t a, std::int64_t b,
                                             std::int64_t m) {
  POLYMEM_REQUIRE(m >= 1, "congruence modulus must be positive");
  const std::int64_t an = floormod(a, m);
  const std::int64_t bn = floormod(b, m);
  if (an == 0)  // 0·x ≡ b: all of Z when b ≡ 0, else unsolvable
    return bn == 0 ? std::optional<ResidueClass>({0, 1}) : std::nullopt;
  const Egcd e = egcd(an, m);
  if (bn % e.g != 0) return std::nullopt;
  const std::int64_t step = m / e.g;
  // x0 = (b/g)·x mod (m/g), where an·x + m·y == g.
  const std::int64_t x0 =
      floormod(static_cast<std::int64_t>(
                   (static_cast<__int128>(bn / e.g) * e.x) % step),
               step);
  return ResidueClass{x0, step};
}

std::optional<ResidueClass> intersect(const ResidueClass& a,
                                      const ResidueClass& b) {
  // CRT: find x ≡ a.r (mod a.m) and x ≡ b.r (mod b.m).
  const Egcd e = egcd(a.modulus, b.modulus);
  const std::int64_t diff = b.residue - a.residue;
  if (diff % e.g != 0) return std::nullopt;
  const std::int64_t lcm = a.modulus / e.g * b.modulus;
  // x = a.r + a.m·k with a.m·k ≡ diff (mod b.m) → k = (diff/g)·e.x.
  const __int128 k = static_cast<__int128>(diff / e.g) * e.x;
  const __int128 x = a.residue + static_cast<__int128>(a.modulus) *
                                     static_cast<std::int64_t>(
                                         k % (b.modulus / e.g));
  return ResidueClass{floormod(static_cast<std::int64_t>(x % lcm), lcm), lcm};
}

}  // namespace polymem::verify
