// Linear congruence solving over Z — the number-theoretic core of the
// symbolic affine prover (verify/affine_prover.hpp).
//
// The prover reduces "do two lanes of an affine pattern collide at some
// anchor?" to the solvability of small systems of linear congruences
//   a·x ≡ b (mod m)
// whose solution sets are arithmetic progressions r + nZ. Everything
// here is exact 64-bit integer math: extended GCD, single-congruence
// solving, and CRT intersection of residue classes — the three
// operations the prover composes.
#pragma once

#include <cstdint>
#include <optional>

namespace polymem::verify {

/// Result of the extended Euclidean algorithm: g = gcd(|a|, |b|) and
/// Bezout coefficients with a*x + b*y == g.
struct Egcd {
  std::int64_t g = 0;
  std::int64_t x = 0;
  std::int64_t y = 0;
};

/// Extended GCD; egcd(0, 0) is {0, 0, 0} (every integer divides 0).
Egcd egcd(std::int64_t a, std::int64_t b);

/// An arithmetic progression r + m·Z with 0 <= r < m (m >= 1): the
/// solution set of a solvable linear congruence. modulus == 1 is all of Z.
struct ResidueClass {
  std::int64_t residue = 0;
  std::int64_t modulus = 1;

  /// True when x belongs to the class.
  bool contains(std::int64_t x) const;

  /// The smallest member >= lo.
  std::int64_t first_at_least(std::int64_t lo) const;

  friend bool operator==(const ResidueClass&, const ResidueClass&) = default;
};

/// Solves a·x ≡ b (mod m), m >= 1. The solution set, when non-empty, is
/// the class x0 + (m/g)·Z with g = gcd(a, m); empty optional when g ∤ b.
std::optional<ResidueClass> solve_congruence(std::int64_t a, std::int64_t b,
                                             std::int64_t m);

/// Intersects two residue classes via CRT: the result is a class modulo
/// lcm(m1, m2), or empty when the classes are disjoint
/// (r1 ≢ r2 (mod gcd(m1, m2))).
std::optional<ResidueClass> intersect(const ResidueClass& a,
                                      const ResidueClass& b);

}  // namespace polymem::verify
