#include "verify/plan_lint.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "common/error.hpp"
#include "common/math.hpp"
#include "maf/conflict.hpp"
#include "verify/affine_prover.hpp"

namespace polymem::verify {

using access::Coord;
using access::PatternKind;
using core::AccessBatch;

const char* lint_code(LintKind kind) {
  switch (kind) {
    case LintKind::kBadConfig: return "PML001";
    case LintKind::kEmptyBatch: return "PML002";
    case LintKind::kUnsupportedPattern: return "PML003";
    case LintKind::kUnalignedAnchor: return "PML004";
    case LintKind::kMisalignedStride: return "PML005";
    case LintKind::kOutOfBounds: return "PML006";
    case LintKind::kBankConflict: return "PML007";
    case LintKind::kReadAfterWrite: return "PML008";
    case LintKind::kTraceOutOfBounds: return "PML009";
    case LintKind::kBankImbalance: return "PML010";
  }
  throw InvalidArgument("unknown lint kind");
}

const char* lint_name(LintKind kind) {
  switch (kind) {
    case LintKind::kBadConfig: return "bad-config";
    case LintKind::kEmptyBatch: return "empty-batch";
    case LintKind::kUnsupportedPattern: return "unsupported-pattern";
    case LintKind::kUnalignedAnchor: return "unaligned-anchor";
    case LintKind::kMisalignedStride: return "misaligned-stride";
    case LintKind::kOutOfBounds: return "out-of-bounds";
    case LintKind::kBankConflict: return "bank-conflict";
    case LintKind::kReadAfterWrite: return "read-after-write";
    case LintKind::kTraceOutOfBounds: return "trace-out-of-bounds";
    case LintKind::kBankImbalance: return "bank-imbalance";
  }
  throw InvalidArgument("unknown lint kind");
}

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  throw InvalidArgument("unknown severity");
}

const char* dir_name(BatchOp::Dir dir) {
  switch (dir) {
    case BatchOp::Dir::kRead: return "read";
    case BatchOp::Dir::kWrite: return "write";
  }
  throw InvalidArgument("unknown batch direction");
}

std::size_t LintReport::errors() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == Severity::kError;
                    }));
}

std::size_t LintReport::warnings() const {
  return diagnostics.size() - errors();
}

std::string LintReport::summary() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics)
    os << severity_name(d.severity) << ' ' << d.message << '\n';
  if (diagnostics.empty()) {
    os << "clean";
  } else {
    os << errors() << " error(s), " << warnings() << " warning(s)";
  }
  return os.str();
}

namespace {

/// Inclusive element rectangle [lo, hi] touched by a batch; empty batches
/// have no rectangle.
struct Rect {
  Coord lo;
  Coord hi;

  bool intersects(const Rect& other) const {
    return lo.i <= other.hi.i && other.lo.i <= hi.i && lo.j <= other.hi.j &&
           other.lo.j <= hi.j;
  }
};

std::string rect_str(const Rect& r) {
  std::ostringstream os;
  os << '[' << r.lo.i << ".." << r.hi.i << "]x[" << r.lo.j << ".." << r.hi.j
     << ']';
  return os.str();
}

Coord batch_anchor(const AccessBatch& batch, std::int64_t k, std::int64_t o) {
  return {batch.start.i + o * batch.outer_stride.i + k * batch.inner_stride.i,
          batch.start.j + o * batch.outer_stride.j + k * batch.inner_stride.j};
}

/// The element extent of one access of the op relative to its anchor:
/// the pattern extent for Table-I ops, the lane bounding box for affine
/// ops. Expressed as inclusive offset bounds.
AffinePattern::Box op_extent(const BatchOp& step, unsigned p, unsigned q) {
  if (step.affine.has_value()) return step.affine->bounding_box();
  const auto ext = access::pattern_extent(step.batch.kind, p, q);
  AffinePattern::Box box;
  box.min_j = ext.col_offset;
  box.max_i = ext.rows - 1;
  box.max_j = ext.col_offset + ext.cols - 1;
  return box;
}

/// The op's element bounding rectangle. Anchors are affine in the
/// (inner, outer) index box, so the extremes occur at the four corners.
std::optional<Rect> batch_rect(const BatchOp& step, unsigned p, unsigned q) {
  const AccessBatch& batch = step.batch;
  if (batch.inner_count <= 0 || batch.outer_count <= 0) return std::nullopt;
  Rect r{batch.start, batch.start};
  for (int corner = 1; corner < 4; ++corner) {
    const Coord a = batch_anchor(batch,
                                 (corner & 1) ? batch.inner_count - 1 : 0,
                                 (corner & 2) ? batch.outer_count - 1 : 0);
    r.lo.i = std::min(r.lo.i, a.i);
    r.lo.j = std::min(r.lo.j, a.j);
    r.hi.i = std::max(r.hi.i, a.i);
    r.hi.j = std::max(r.hi.j, a.j);
  }
  const AffinePattern::Box box = op_extent(step, p, q);
  r.lo.i += box.min_i;
  r.lo.j += box.min_j;
  r.hi.i += box.max_i;
  r.hi.j += box.max_j;
  return r;
}

/// "row" for Table-I ops, "affine 'lanes ...'" for affine ops.
std::string op_display(const BatchOp& step) {
  if (!step.affine.has_value()) return access::pattern_name(step.batch.kind);
  return "affine '" + step.affine->spec() + "'";
}

std::string op_prefix(std::int64_t op, const BatchOp& step) {
  std::ostringstream os;
  os << "op " << op << " (" << dir_name(step.dir) << ' ' << op_display(step)
     << " at " << step.batch.start << "): ";
  return os.str();
}

class Linter {
 public:
  explicit Linter(const core::PolyMemConfig& config) : config_(config) {}

  LintReport take() { return std::move(report_); }

  void add(LintKind kind, Severity severity, std::int64_t op,
           const std::string& detail,
           std::optional<AffineCounterexample> counterexample = std::nullopt) {
    Diagnostic d;
    d.kind = kind;
    d.severity = severity;
    d.op = op;
    d.message = std::string("[") + lint_code(kind) + "] " + detail;
    d.counterexample = std::move(counterexample);
    report_.diagnostics.push_back(std::move(d));
  }

  /// Validates the configuration and builds the MAF; emits kBadConfig and
  /// returns false when the configuration cannot be analysed at all.
  bool init() {
    try {
      config_.validate();
      maf_.emplace(config_.scheme, config_.p, config_.q);
      sym_ = SymbolicMaf::of(*maf_);
      return true;
    } catch (const Error& e) {
      add(LintKind::kBadConfig, Severity::kError, -1, e.what());
      return false;
    }
  }

  void lint_op(std::int64_t op, const BatchOp& step) {
    const AccessBatch& batch = step.batch;
    const std::string prefix = op_prefix(op, step);
    if (batch.inner_count < 0 || batch.outer_count < 0) {
      std::ostringstream os;
      os << prefix << "negative batch counts (inner " << batch.inner_count
         << ", outer " << batch.outer_count << ')';
      add(LintKind::kEmptyBatch, Severity::kError, op, os.str());
      return;
    }
    if (batch.count() == 0) {
      add(LintKind::kEmptyBatch, Severity::kWarning, op,
          prefix + "batch moves no data");
      return;
    }
    if (step.affine.has_value()) {
      lint_affine_op(op, prefix, step);
      return;
    }
    const maf::SupportLevel level = maf::probe_support(*maf_, batch.kind);
    if (level == maf::SupportLevel::kNone) {
      std::ostringstream os;
      os << prefix << "scheme " << maf::scheme_name(config_.scheme) << " ("
         << config_.p << 'x' << config_.q << ") never serves pattern "
         << access::pattern_name(batch.kind);
      add(LintKind::kUnsupportedPattern, Severity::kError, op, os.str());
      report_conflict(op, prefix, batch);
    } else if (level == maf::SupportLevel::kAligned) {
      lint_alignment(op, prefix, batch);
    }
    lint_bounds(op, prefix, batch);
  }

  /// Admission of an arbitrary affine op: the symbolic prover replaces
  /// the capability oracle. Proven-kAny patterns are admitted silently;
  /// proven-kAligned patterns get the standard anchor/stride alignment
  /// lint; refuted patterns are errors carrying the collision witness.
  void lint_affine_op(std::int64_t op, const std::string& prefix,
                      const BatchOp& step) {
    const AffinePattern& pattern = *step.affine;
    const AffineVerdict any =
        prove_conflict_free(sym_, pattern, AnchorClass::kAny);
    if (!any.degenerate.empty()) {
      add(LintKind::kEmptyBatch, Severity::kError, op,
          prefix + "affine pattern is degenerate: " + any.degenerate);
      return;
    }
    const auto lanes = static_cast<std::int64_t>(config_.lanes());
    if (pattern.count() != lanes) {
      std::ostringstream os;
      os << prefix << "affine pattern has " << pattern.count()
         << " lanes; a " << config_.p << 'x' << config_.q
         << " memory issues " << lanes << " lanes per access";
      add(LintKind::kUnsupportedPattern, Severity::kError, op, os.str());
    } else {
      AffineCounterexample cx;
      const maf::SupportLevel level = prove_affine_support(sym_, pattern, &cx);
      if (level == maf::SupportLevel::kNone) {
        std::ostringstream os;
        os << prefix << "scheme " << maf::scheme_name(config_.scheme) << " ("
           << config_.p << 'x' << config_.q
           << ") cannot serve the affine pattern conflict-free: " << cx.str();
        add(LintKind::kUnsupportedPattern, Severity::kError, op, os.str(), cx);
      } else if (level == maf::SupportLevel::kAligned) {
        lint_affine_alignment(op, prefix, step, cx);
      }
    }
    lint_affine_bounds(op, prefix, step);
  }

  void lint_hazards(const std::vector<BatchOp>& ops) {
    for (std::size_t w = 0; w < ops.size(); ++w) {
      if (ops[w].dir != BatchOp::Dir::kWrite) continue;
      const auto wr = batch_rect(ops[w], config_.p, config_.q);
      if (!wr.has_value()) continue;
      for (std::size_t r = w + 1; r < ops.size(); ++r) {
        if (ops[r].dir != BatchOp::Dir::kRead) continue;
        const auto rr = batch_rect(ops[r], config_.p, config_.q);
        if (!rr.has_value() || !wr->intersects(*rr)) continue;
        std::ostringstream os;
        os << "op " << r << " reads " << rect_str(*rr)
           << ", overlapping elements op " << w << " writes ("
           << rect_str(*wr)
           << "); on pipelined hardware the read can issue before the "
              "write retires — order the batches or fuse them with "
              "stream_copy_batch";
        add(LintKind::kReadAfterWrite, Severity::kWarning,
            static_cast<std::int64_t>(r), os.str());
      }
    }
  }

  void lint_trace(const sched::AccessTrace& trace) {
    const auto outside =
        trace.out_of_bounds(config_.height, config_.width);
    if (!outside.empty()) {
      std::ostringstream os;
      os << outside.size() << " trace element(s) outside the "
         << config_.height << 'x' << config_.width << " space, e.g. "
         << outside.front();
      add(LintKind::kTraceOutOfBounds, Severity::kError, -1, os.str());
    }
    if (trace.empty()) return;
    const unsigned n = config_.lanes();
    std::vector<std::int64_t> load(n, 0);
    for (const Coord& c : trace.elements()) ++load[maf_->bank(c)];
    const auto worst = std::max_element(load.begin(), load.end());
    const std::int64_t ideal = ceil_div<std::int64_t>(trace.size(), n);
    if (*worst >= 2 * ideal && *worst >= 2) {
      std::ostringstream os;
      os << "bank " << worst - load.begin() << " holds " << *worst << " of "
         << trace.size() << " trace elements (balanced would be " << ideal
         << "); every schedule needs at least " << *worst << " cycles";
      add(LintKind::kBankImbalance, Severity::kWarning, -1, os.str());
    }
  }

 private:
  /// PML004/PML005 for an affine op whose proof only covers aligned
  /// anchors; `unaligned_cx` is the witness ruling out arbitrary anchors.
  void lint_affine_alignment(std::int64_t op, const std::string& prefix,
                             const BatchOp& step,
                             const AffineCounterexample& unaligned_cx) {
    const AccessBatch& batch = step.batch;
    const auto p = static_cast<std::int64_t>(config_.p);
    const auto q = static_cast<std::int64_t>(config_.q);
    if (batch.start.i % p != 0 || batch.start.j % q != 0) {
      std::ostringstream os;
      os << prefix << "affine pattern is proven conflict-free only at " << p
         << '/' << q << "-aligned anchors; start " << batch.start
         << " is unaligned (unaligned witness: " << unaligned_cx.str() << ')';
      add(LintKind::kUnalignedAnchor, Severity::kError, op, os.str(),
          unaligned_cx);
    }
    const Coord strides[] = {batch.inner_stride, batch.outer_stride};
    const std::int64_t counts[] = {batch.inner_count, batch.outer_count};
    const char* names[] = {"inner", "outer"};
    for (int s = 0; s < 2; ++s) {
      if (counts[s] <= 1) continue;  // stride never applied
      if (strides[s].i % p == 0 && strides[s].j % q == 0) continue;
      std::ostringstream os;
      os << prefix << names[s] << " stride " << strides[s] << " leaves the "
         << p << '/' << q
         << "-aligned anchor lattice required by the affine pattern";
      add(LintKind::kMisalignedStride, Severity::kError, op, os.str(),
          unaligned_cx);
    }
  }

  /// PML006 for affine ops: corner anchors plus the lane bounding box
  /// must stay inside the address space.
  void lint_affine_bounds(std::int64_t op, const std::string& prefix,
                          const BatchOp& step) {
    const AffinePattern::Box box = step.affine->bounding_box();
    const AccessBatch& batch = step.batch;
    Coord reported[4];
    int reported_count = 0;
    for (int corner = 0; corner < 4; ++corner) {
      const Coord a = batch_anchor(batch,
                                   (corner & 1) ? batch.inner_count - 1 : 0,
                                   (corner & 2) ? batch.outer_count - 1 : 0);
      if (a.i + box.min_i >= 0 && a.i + box.max_i < config_.height &&
          a.j + box.min_j >= 0 && a.j + box.max_j < config_.width)
        continue;
      bool seen = false;
      for (int r = 0; r < reported_count; ++r) seen = seen || reported[r] == a;
      if (seen) continue;
      reported[reported_count++] = a;
      std::ostringstream os;
      os << prefix << "corner access at " << a << " (lane elements ["
         << a.i + box.min_i << ".." << a.i + box.max_i << "]x["
         << a.j + box.min_j << ".." << a.j + box.max_j << "]) leaves the "
         << config_.height << 'x' << config_.width << " address space";
      add(LintKind::kOutOfBounds, Severity::kError, op, os.str());
    }
  }

  void lint_alignment(std::int64_t op, const std::string& prefix,
                      const AccessBatch& batch) {
    const auto p = static_cast<std::int64_t>(config_.p);
    const auto q = static_cast<std::int64_t>(config_.q);
    bool broken = false;
    if (batch.start.i % p != 0 || batch.start.j % q != 0) {
      std::ostringstream os;
      os << prefix << "pattern " << access::pattern_name(batch.kind)
         << " is conflict-free only at " << p << '/' << q
         << "-aligned anchors; start " << batch.start << " is unaligned";
      add(LintKind::kUnalignedAnchor, Severity::kError, op, os.str());
      broken = true;
    }
    const Coord strides[] = {batch.inner_stride, batch.outer_stride};
    const std::int64_t counts[] = {batch.inner_count, batch.outer_count};
    const char* names[] = {"inner", "outer"};
    for (int s = 0; s < 2; ++s) {
      if (counts[s] <= 1) continue;  // stride never applied
      if (strides[s].i % p == 0 && strides[s].j % q == 0) continue;
      std::ostringstream os;
      os << prefix << names[s] << " stride " << strides[s]
         << " leaves the " << p << '/' << q
         << "-aligned anchor lattice required by pattern "
         << access::pattern_name(batch.kind);
      add(LintKind::kMisalignedStride, Severity::kError, op, os.str());
      broken = true;
    }
    if (broken) report_conflict(op, prefix, batch);
  }

  void lint_bounds(std::int64_t op, const std::string& prefix,
                   const AccessBatch& batch) {
    Coord reported[4];
    int reported_count = 0;
    for (int corner = 0; corner < 4; ++corner) {
      const Coord a = batch_anchor(batch,
                                   (corner & 1) ? batch.inner_count - 1 : 0,
                                   (corner & 2) ? batch.outer_count - 1 : 0);
      if (access::fits({batch.kind, a}, config_.p, config_.q, config_.height,
                       config_.width))
        continue;
      bool seen = false;
      for (int r = 0; r < reported_count; ++r) seen = seen || reported[r] == a;
      if (seen) continue;
      reported[reported_count++] = a;
      std::ostringstream os;
      os << prefix << "corner access at " << a << " leaves the "
         << config_.height << 'x' << config_.width << " address space";
      add(LintKind::kOutOfBounds, Severity::kError, op, os.str());
    }
  }

  /// Finds the first batch anchor whose expansion collides and reports the
  /// offending lane pair and the worst per-bank load (the serialization
  /// cost a conflict-tolerant memory would pay).
  void report_conflict(std::int64_t op, const std::string& prefix,
                       const AccessBatch& batch) {
    constexpr std::int64_t kMaxAnchorsScanned = 4096;
    const unsigned n = config_.lanes();
    std::vector<Coord> el;
    std::vector<unsigned> lane_of(n);
    std::vector<unsigned> load(n);
    const std::int64_t total = batch.count();
    for (std::int64_t t = 0; t < std::min(total, kMaxAnchorsScanned); ++t) {
      const access::ParallelAccess acc = batch.access(t);
      access::expand_into(acc, config_.p, config_.q, el);
      std::fill(lane_of.begin(), lane_of.end(), n);
      std::fill(load.begin(), load.end(), 0u);
      unsigned first = n, second = n, bank = n;
      for (unsigned k = 0; k < el.size(); ++k) {
        const unsigned b = maf_->bank(el[k]);
        ++load[b];
        if (lane_of[b] != n && first == n) {
          first = lane_of[b];
          second = k;
          bank = b;
        }
        lane_of[b] = k;
      }
      if (first == n) continue;
      const unsigned worst = *std::max_element(load.begin(), load.end());
      std::ostringstream os;
      os << prefix << "pattern " << access::pattern_name(acc.kind) << " at "
         << acc.anchor << ": lanes " << first << " and " << second
         << " (elements " << el[first] << " and " << el[second]
         << ") both map to bank " << bank << "; worst bank serves " << worst
         << " of " << n << " lanes (" << worst << "-cycle serialization)";
      AffineCounterexample cx;
      cx.anchor = acc.anchor;
      cx.lane_a = first;
      cx.lane_b = second;
      cx.elem_a = el[first];
      cx.elem_b = el[second];
      cx.bank = bank;
      add(LintKind::kBankConflict, Severity::kWarning, op, os.str(), cx);
      return;
    }
  }

  core::PolyMemConfig config_;
  std::optional<maf::Maf> maf_;
  SymbolicMaf sym_;
  LintReport report_;
};

}  // namespace

LintReport lint_batch(const core::PolyMemConfig& config,
                      const core::AccessBatch& batch) {
  return lint_program(config, {{BatchOp::Dir::kRead, batch}});
}

LintReport lint_program(const core::PolyMemConfig& config,
                        const std::vector<BatchOp>& ops) {
  Linter linter(config);
  if (linter.init()) {
    for (std::size_t t = 0; t < ops.size(); ++t)
      linter.lint_op(static_cast<std::int64_t>(t), ops[t]);
    linter.lint_hazards(ops);
  }
  return linter.take();
}

LintReport lint_trace(const core::PolyMemConfig& config,
                      const sched::AccessTrace& trace) {
  Linter linter(config);
  if (linter.init()) linter.lint_trace(trace);
  return linter.take();
}

}  // namespace polymem::verify
