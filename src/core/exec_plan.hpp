// ExecPlan — a batch of parallel accesses compiled to flat SoA tables.
//
// The plan-template cache (core/plan_cache.hpp) already reduces one
// access to "permute through a residue-class table, add one delta per
// bank". What remained slow (BENCH_core.json: 75–130 ns/access) was the
// *execution*: per access, the engine still walked per-lane vectors,
// reset per-bank cycle state and crossed a function call per bank. The
// plan is a static permutation, so execution should be a gather, not a
// traversal.
//
// compile() turns a whole AccessBatch into structure-of-arrays form:
//
//   tmpl_of[t]  int32  — which residue-class table access t uses
//                        (strided walks cycle through a handful);
//   delta[t]    int64  — access t's word offset from the table's base
//                        addresses (the plan cache's per-anchor delta);
//   tables[m]          — one entry per distinct residue class touched:
//     bank[k]          int32      lane -> bank (the shuffle select),
//     lane_for_bank[b] uint32     the inverse permutation,
//     bank_addr0[b]    int64      intra-bank base offsets, and the
//     lane_base / bank_base       pointer tables that fold the bank
//                                 select and base address into a single
//                                 uintptr per lane/bank — so executing
//                                 access t is the gather
//                                   out[k] = *(lane_base[k] + delta[t])
//                                 and the mirrored scatter for writes.
//
// All arrays are cache-line aligned (simd/aligned.hpp) and resized in
// place: recompiling a plan of the same shape allocates nothing, which
// the batch heap-count test enforces. The pointer tables stay valid for
// the owning PolyMem's lifetime — bank storage is fixed at construction
// and plan templates are pinned — so a compiled plan can be memoized and
// replayed for every later call with an equal AccessBatch.
//
// The permutation baked into each table is safe to replay blindly: the
// capability oracle proves conflict-freedom for the scheme per residue
// class before the plan cache hands out a template, which makes `bank` a
// permutation of [0, lanes) by construction (see plan_cache.hpp). That is
// why execution needs no per-cycle bank-conflict accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "core/access_batch.hpp"
#include "core/banks.hpp"
#include "core/plan_cache.hpp"
#include "core/simd/aligned.hpp"

namespace polymem::core {

class ExecPlan {
 public:
  /// Distinct residue classes a single plan may span before compile()
  /// gives up (adversarial batches fall back to the interpreted engine).
  static constexpr std::size_t kMaxTables = 64;

  struct Tables {
    const PlanTemplate* tmpl = nullptr;
    simd::AlignedVec<std::int32_t> bank;           // lane k -> bank
    simd::AlignedVec<std::uint32_t> lane_for_bank; // bank b -> lane
    simd::AlignedVec<std::int64_t> bank_addr0;     // bank b -> base offset
    // Gather table, [port][lane] flattened: replica `port`'s storage of
    // lane k's bank, pre-advanced by the lane's base address.
    simd::AlignedVec<std::uintptr_t> lane_base;
    // Scatter table, [replica][bank] flattened: every replica's storage
    // of bank b, pre-advanced by the bank's base address.
    simd::AlignedVec<std::uintptr_t> bank_base;
  };

  /// Compiles `batch` against the plan cache and bank storage. Returns
  /// false — leaving the plan unusable — when any access lacks a cached
  /// template (cache disabled/full, unsupported anchors; the interpreted
  /// engine then serves the batch and reports exact errors) or the batch
  /// spans more than kMaxTables residue classes.
  bool compile(const AccessBatch& batch, PlanCache& cache, BankArray& banks,
               unsigned lanes);

  std::int64_t count() const { return count_; }
  unsigned lanes() const { return lanes_; }
  unsigned ports() const { return ports_; }
  bool uniform() const { return used_ == 1; }
  std::size_t table_count() const { return used_; }

  const Tables& table(std::size_t m) const { return tables_[m]; }
  const std::int32_t* tmpl_of() const { return tmpl_of_.data(); }
  const std::int64_t* delta() const { return delta_.data(); }

  /// Gather pointer table of table `m` as seen by read replica `port`.
  const std::uintptr_t* lane_base(std::size_t m, unsigned port) const {
    return tables_[m].lane_base.data() +
           static_cast<std::size_t>(port) * lanes_;
  }

 private:
  Tables& acquire_table(const PlanTemplate* tmpl, BankArray& banks);
  std::int32_t resolve_table(const PlanTemplate* tmpl, BankArray& banks);

  simd::AlignedVec<std::int32_t> tmpl_of_;
  simd::AlignedVec<std::int64_t> delta_;
  // Table pool. [0, used_) is the current batch's tables in first-use
  // order — the dense prefix tmpl_of_ indexes and uniform() relies on.
  // [used_, pool_size_) retains tables built by earlier compiles of the
  // same (banks, lanes) pairing: a drain loop recompiling run after run
  // cycles through the same few residue classes, and rebuilding their
  // pointer tables dominated recompile cost. Reuse swaps a retained
  // table into the live prefix instead of rebuilding it; the pool is
  // dropped whenever the bank storage, lane count or port count change.
  std::vector<Tables> tables_;
  std::size_t used_ = 0;
  std::size_t pool_size_ = 0;
  const void* pool_key_ = nullptr;  // BankArray the pool was built against
  std::int64_t count_ = 0;
  unsigned lanes_ = 0;
  unsigned ports_ = 0;
};

}  // namespace polymem::core
