#include "core/plan_cache.hpp"

#include <mutex>

#include "common/error.hpp"
#include "common/math.hpp"

namespace polymem::core {

using access::ParallelAccess;
using access::PatternKind;

namespace {

// Keying templates as (kind * Pi + ri) * Pj + rj must not overflow, and a
// degenerate geometry with astronomically long periods would hash poorly
// anyway; such configurations simply keep the naive path.
constexpr std::int64_t kMaxPeriod = std::int64_t{1} << 20;

// Templates are built lazily per residue class actually touched, so the
// map stays tiny for regular walks; this cap bounds adversarial access
// sequences that spray residues (overflow degrades to the naive path).
constexpr std::size_t kMaxTemplates = std::size_t{1} << 16;

}  // namespace

PlanCache::PlanCache(const PolyMemConfig& config, const maf::Maf& maf,
                     const maf::AddressingFunction& addressing)
    : config_(&config), maf_(&maf), addressing_(&addressing) {
  period_i_ = maf.period_i();
  period_j_ = maf.period_j();
  enabled_ = period_i_ < kMaxPeriod && period_j_ < kMaxPeriod;
  if (!enabled_) return;
  POLYMEM_ASSERT(period_i_ % config.p == 0 && period_j_ % config.q == 0);
  row_words_ = config.width / config.q;
  delta_i_ = (period_i_ / config.p) * row_words_;
  delta_j_ = period_j_ / config.q;
  coords_scratch_.reserve(config.lanes());
  for (PatternKind kind : access::kAllPatterns) {
    const auto ext = access::pattern_extent(kind, config.p, config.q);
    KindInfo& ki = kinds_[static_cast<std::size_t>(kind)];
    ki.min_i = 0;
    ki.max_i = config.height - ext.rows;
    ki.min_j = -ext.col_offset;
    ki.max_j = config.width - ext.cols - ext.col_offset;
  }
}

maf::SupportLevel PlanCache::support_for(PatternKind kind) {
  KindInfo& ki = kinds_[static_cast<std::size_t>(kind)];
  int state = ki.support.load(std::memory_order_relaxed);
  if (state == 0) {
    // probe_support is deterministic and internally synchronised, so a
    // racing probe stores the same value; relaxed is enough.
    state = static_cast<int>(maf::probe_support(*maf_, kind)) + 1;
    ki.support.store(state, std::memory_order_relaxed);
  }
  return static_cast<maf::SupportLevel>(state - 1);
}

const PlanTemplate* PlanCache::lookup(const ParallelAccess& access,
                                      std::int64_t& delta, Memo& memo) {
  if (!enabled_) return nullptr;
  const KindInfo& ki = kinds_[static_cast<std::size_t>(access.kind)];
  switch (support_for(access.kind)) {
    case maf::SupportLevel::kNone:
      return nullptr;
    case maf::SupportLevel::kAligned:
      // Periods are multiples of p and q, so alignment is a residue-class
      // property and each cached template is alignment-consistent.
      if (access.anchor.i % config_->p != 0 ||
          access.anchor.j % config_->q != 0)
        return nullptr;
      break;
    case maf::SupportLevel::kAny:
      break;
  }
  const auto [ai, aj] = access.anchor;
  if (ai < ki.min_i || ai > ki.max_i || aj < ki.min_j || aj > ki.max_j)
    return nullptr;
  // In-bounds anchors are non-negative (min_j >= 0 even for SecDiag), so
  // plain division is the floored decomposition a = A*P + r, r in [0, P).
  const std::int64_t ri = ai % period_i_;
  const std::int64_t rj = aj % period_j_;
  delta = (ai / period_i_) * delta_i_ + (aj / period_j_) * delta_j_;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(access.kind) * period_i_ + ri) * period_j_ +
      rj;
  if (key == memo.key) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return memo.tmpl;
  }
  const PlanTemplate* tmpl = find_or_build(access.kind, ri, rj, key);
  if (tmpl == nullptr) return nullptr;  // cache full
  memo.key = key;
  memo.tmpl = tmpl;
  return tmpl;
}

const PlanTemplate* PlanCache::find_or_build(PatternKind kind, std::int64_t ri,
                                             std::int64_t rj,
                                             std::uint64_t key) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    if (auto it = templates_.find(key); it != templates_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return &it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  // Double-check: another thread may have built it between the locks.
  if (auto it = templates_.find(key); it != templates_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return &it->second;
  }
  if (templates_.size() >= kMaxTemplates) return nullptr;
  return &build(kind, ri, rj, key);
}

std::optional<PlanCache::TemplateView> PlanCache::inspect(
    const ParallelAccess& access) {
  TemplateView view;
  view.tmpl = lookup(access, view.delta);
  if (view.tmpl == nullptr) return std::nullopt;
  // lookup() only serves in-bounds (non-negative) anchors, so plain
  // remainder is the floored residue.
  view.residue_i = access.anchor.i % period_i_;
  view.residue_j = access.anchor.j % period_j_;
  return view;
}

const PlanTemplate& PlanCache::build(PatternKind kind, std::int64_t ri,
                                     std::int64_t rj, std::uint64_t key) {
  // Runs with mutex_ held exclusively (find_or_build); coords_scratch_ is
  // only touched here, so the exclusive lock also covers it.
  //
  // The residue anchor (ri, rj) may place elements outside the address
  // space or below zero (SecDiag walks left); bank() and the floordiv
  // decomposition are defined there, and the per-anchor delta shifts the
  // base addresses back into range for every real anchor of the class.
  access::expand_into({kind, {ri, rj}}, config_->p, config_->q,
                      coords_scratch_);
  const unsigned lanes = static_cast<unsigned>(coords_scratch_.size());
  PlanTemplate t;
  t.bank.resize(lanes);
  t.lane_for_bank.resize(lanes);
  t.addr0.resize(lanes);
  t.bank_addr0.resize(lanes);
  const auto p = static_cast<std::int64_t>(config_->p);
  const auto q = static_cast<std::int64_t>(config_->q);
  for (unsigned k = 0; k < lanes; ++k) {
    const access::Coord c = coords_scratch_[k];
    t.bank[k] = maf_->bank(c);
    t.addr0[k] = floordiv(c.i, p) * row_words_ + floordiv(c.j, q);
  }
  for (unsigned k = 0; k < lanes; ++k) {
    // Conflict-freeness (proven by the oracle before lookup hands out
    // templates) makes `bank` a permutation; a violation here is a bug.
    POLYMEM_ASSERT(t.bank[k] < lanes);
    t.lane_for_bank[t.bank[k]] = k;
    t.bank_addr0[t.bank[k]] = t.addr0[k];
  }
  builds_.fetch_add(1, std::memory_order_relaxed);
  return templates_.emplace(key, std::move(t)).first->second;
}

}  // namespace polymem::core
