// Host-data layout helpers.
//
// Maps linear host arrays into PolyMem's 2D address space and converts
// between 64-bit storage words and application element types. The STREAM
// design (paper Sec. V) stores each vector as a band of full rows
// ("PolyMem ... is split in three (equally-sized) regions"); VectorBand
// captures that placement.
#pragma once

#include <bit>
#include <cstdint>

#include "access/coord.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "hw/bram.hpp"

namespace polymem::core {

/// Bit-exact packing of application doubles into storage words.
inline hw::Word pack_double(double v) { return std::bit_cast<hw::Word>(v); }
inline double unpack_double(hw::Word w) { return std::bit_cast<double>(w); }

/// A 1D vector of `length` elements stored row-major in a band of rows
/// starting at `first_row`, using the full address-space width.
class VectorBand {
 public:
  VectorBand(std::int64_t first_row, std::int64_t length, std::int64_t width)
      : first_row_(first_row), length_(length), width_(width) {
    POLYMEM_REQUIRE(width >= 1, "width must be positive");
    POLYMEM_REQUIRE(length >= 0, "length must be non-negative");
    POLYMEM_REQUIRE(first_row >= 0, "first row must be non-negative");
  }

  std::int64_t first_row() const { return first_row_; }
  std::int64_t length() const { return length_; }
  std::int64_t width() const { return width_; }

  /// Rows the band occupies (the last one may be partially used).
  std::int64_t rows() const { return ceil_div(length_, width_); }

  /// Coordinate of linear element k.
  access::Coord coord(std::int64_t k) const {
    POLYMEM_REQUIRE(k >= 0 && k < length_, "vector index out of range");
    return {first_row_ + k / width_, k % width_};
  }

  /// First coordinate of the aligned group of n elements containing k
  /// (k must be a multiple of n and n must divide width).
  access::Coord group_anchor(std::int64_t k, std::int64_t n) const {
    POLYMEM_REQUIRE(n >= 1 && width_ % n == 0, "group must divide the width");
    POLYMEM_REQUIRE(k % n == 0, "group index must be aligned");
    return coord(k);
  }

 private:
  std::int64_t first_row_;
  std::int64_t length_;
  std::int64_t width_;
};

}  // namespace polymem::core
