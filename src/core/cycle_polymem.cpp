#include "core/cycle_polymem.hpp"

#include "common/error.hpp"

namespace polymem::core {

CyclePolyMem::CyclePolyMem(PolyMemConfig config) : mem_(std::move(config)) {
  const unsigned ports = mem_.config().read_ports;
  read_req_.resize(ports);
  completed_.resize(ports);
  read_pipe_.reserve(ports);
  for (unsigned r = 0; r < ports; ++r)
    read_pipe_.emplace_back(mem_.config().read_latency);
}

bool CyclePolyMem::issue_write(const access::ParallelAccess& where,
                               std::span<const Word> data) {
  POLYMEM_REQUIRE(data.size() == mem_.config().lanes(),
                  "write data must provide one word per lane");
  if (write_where_.has_value()) return false;
  write_where_ = where;
  write_data_.assign(data.begin(), data.end());
  return true;
}

bool CyclePolyMem::issue_read(unsigned port, const access::ParallelAccess& where,
                              std::uint64_t tag) {
  POLYMEM_REQUIRE(port < read_req_.size(), "read port out of range");
  if (read_req_[port].has_value()) return false;
  read_req_[port] = PendingRead{where, tag};
  return true;
}

void CyclePolyMem::tick() {
  // Execute this cycle's accesses. Reads happen before the write (BRAM
  // read-first behaviour), matching PolyMem::read_write.
  bool any = write_where_.has_value();
  for (unsigned port = 0; port < read_req_.size(); ++port) {
    std::optional<ReadResponse> issued;
    if (read_req_[port].has_value()) {
      any = true;
      ReadResponse resp;
      resp.tag = read_req_[port]->tag;
      resp.data.resize(mem_.config().lanes());
      mem_.read_into(read_req_[port]->where, port, resp.data);
      issued = std::move(resp);
      ++reads_issued_;
      read_req_[port].reset();
    }
    auto out = read_pipe_[port].tick(std::move(issued));
    POLYMEM_ASSERT(!completed_[port].has_value());
    completed_[port] = std::move(out);
  }
  if (write_where_.has_value()) {
    mem_.write(*write_where_, write_data_);
    ++writes_issued_;
    write_where_.reset();
  }
  if (!any) ++idle_cycles_;
  ++cycles_;
}

std::optional<ReadResponse> CyclePolyMem::retire_read(unsigned port) {
  POLYMEM_REQUIRE(port < completed_.size(), "read port out of range");
  std::optional<ReadResponse> out = std::move(completed_[port]);
  completed_[port].reset();
  return out;
}

void CyclePolyMem::drain(unsigned port, std::vector<ReadResponse>& out) {
  POLYMEM_REQUIRE(port < completed_.size(), "read port out of range");
  for (unsigned c = 0; c <= mem_.config().read_latency; ++c) {
    if (auto r = retire_read(port)) out.push_back(std::move(*r));
    tick();
    if (auto r = retire_read(port)) out.push_back(std::move(*r));
  }
}

}  // namespace polymem::core
