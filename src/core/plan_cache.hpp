// Plan-template cache — the fast path of the access engine.
//
// Every MAF in maf/maf.hpp is periodic per axis (Maf::period_i/period_j),
// and the addressing function A(i,j) = |i/p|*(W/q) + |j/q| decomposes over
// those periods: writing the anchor as a = A*P + r (P the axis period,
// r the residue), the bank of every element of the access depends only on
// (pattern, r), and its intra-bank address is an affine shift of the
// residue-anchor address:
//
//   bank(a + d)  = bank(r + d)
//   addr(a + d)  = addr0(r + d) + Ai*(Pi/p)*(W/q) + Aj*(Pj/q)
//
// So one *plan template* per (pattern, anchor-residue) class — the bank
// permutation, its inverse, and the per-lane/per-bank base addresses —
// replaces the per-lane MAF + addressing + shuffle work of the naive AGU
// path with one cache lookup and one add per bank. Templates are built
// lazily on first use and reused for every later access in the same
// residue class (strided walks cycle through a handful of classes).
//
// Concurrency: lookups are thread-safe. The hot-path memo lives with the
// caller (one PlanCache::Memo per reader thread), the template map sits
// behind a shared_mutex (shared find / exclusive build), counters are
// relaxed atomics, and template pointers are stable for the cache's
// lifetime — the contract read_batch_mt and the TSan suite exercise.
//
// Correctness rests on two machine-checked facts: the axis periods
// (tested against Maf::bank over multiple periods) and conflict-freeness
// (the capability oracle's exhaustive per-period proof, which also makes
// every template's bank vector a permutation by construction). The
// differential test suite (tests/core/plan_cache_test.cpp) additionally
// asserts bitwise equality of cached and naive plans and data for every
// scheme x pattern x an anchor sweep.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "access/pattern.hpp"
#include "core/config.hpp"
#include "maf/addressing.hpp"
#include "maf/conflict.hpp"
#include "maf/maf.hpp"

namespace polymem::core {

/// The reusable part of an AccessPlan for one (pattern, anchor-residue)
/// class: the bank permutation in both directions and the base intra-bank
/// addresses. Per-anchor plans are `bank_addr0[b] + delta` with the O(1)
/// delta returned by PlanCache::lookup.
struct PlanTemplate {
  std::vector<unsigned> bank;           ///< lane k -> bank (permutation)
  std::vector<unsigned> lane_for_bank;  ///< bank b -> lane (inverse perm)
  std::vector<std::int64_t> addr0;      ///< lane k -> base address
  std::vector<std::int64_t> bank_addr0; ///< bank b -> base address
};

class PlanCache {
 public:
  PlanCache(const PolyMemConfig& config, const maf::Maf& maf,
            const maf::AddressingFunction& addressing);

  // Holds pointers into the owning PolyMem's blocks; pinned like them.
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// False when the MAF periods are too large to key templates (the owner
  /// then always uses the naive AGU path).
  bool enabled() const { return enabled_; }

  /// Caller-owned single-entry memo for the one-template steady state
  /// (strided walks hit the same residue class for long runs). Each
  /// reader thread keeps its own Memo — the cache itself holds no
  /// per-lookup mutable state besides the shared template map, so
  /// concurrent lookups from any number of threads are safe.
  /// Template pointers are stable (never invalidated while the cache
  /// lives), which is what makes the memoized pointer sound.
  struct Memo {
    std::uint64_t key = ~0ull;
    const PlanTemplate* tmpl = nullptr;
  };

  /// O(1) template lookup. Returns the template plus the per-anchor
  /// address offset `delta` (element addresses are `addr0[k] + delta`).
  /// Returns nullptr — caller falls back to the naive path, which either
  /// serves the access or reports the exact error — when the pattern is
  /// unsupported (including unaligned anchors of aligned-only patterns),
  /// the access leaves the address space, or the cache is disabled/full.
  /// Thread-safe: lookups may run concurrently; `memo` carries the
  /// caller's last-template fast path (one Memo per thread).
  const PlanTemplate* lookup(const access::ParallelAccess& access,
                             std::int64_t& delta, Memo& memo);

  /// Memo-less convenience overload (tools, tests, single-shot callers).
  const PlanTemplate* lookup(const access::ParallelAccess& access,
                             std::int64_t& delta) {
    Memo memo;
    return lookup(access, delta, memo);
  }

  std::int64_t period_i() const { return period_i_; }
  std::int64_t period_j() const { return period_j_; }

  /// Served-from-cache and template-build counters (lookup misses that
  /// return nullptr count as neither). Relaxed atomics: exact under any
  /// serial workload, momentarily stale reads are fine mid-parallel-run.
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t builds() const {
    return builds_.load(std::memory_order_relaxed);
  }
  std::size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return templates_.size();
  }

  /// Template introspection for the static prover (verify/maf_prover.hpp)
  /// and tools: the template serving `access` plus the residue class it is
  /// keyed under and the per-anchor address offset. Goes through the same
  /// cache (and counters) as lookup(); nullopt exactly when lookup() would
  /// return nullptr.
  struct TemplateView {
    const PlanTemplate* tmpl = nullptr;
    std::int64_t residue_i = 0;  ///< anchor.i mod period_i
    std::int64_t residue_j = 0;  ///< anchor.j mod period_j
    std::int64_t delta = 0;      ///< addresses are tmpl->addr0[k] + delta
  };
  std::optional<TemplateView> inspect(const access::ParallelAccess& access);

  /// Aggregate cache state, one call — for polymem_info and reports.
  struct Stats {
    bool enabled = false;
    std::int64_t period_i = 1;
    std::int64_t period_j = 1;
    std::uint64_t hits = 0;
    std::uint64_t builds = 0;
    std::size_t templates = 0;
  };
  Stats stats() const {
    return {enabled_, period_i_, period_j_, hits(), builds(), size()};
  }

 private:
  struct KindInfo {
    // Probed lazily: 0 = unknown, else SupportLevel + 1. probe_support is
    // deterministic, so racing probes store the same value (relaxed).
    std::atomic<int> support{0};
    // Valid anchor rectangle (inclusive) for in-bounds accesses.
    std::int64_t min_i = 0, max_i = -1;
    std::int64_t min_j = 0, max_j = -1;
  };

  maf::SupportLevel support_for(access::PatternKind kind);
  const PlanTemplate* find_or_build(access::PatternKind kind, std::int64_t ri,
                                    std::int64_t rj, std::uint64_t key);
  const PlanTemplate& build(access::PatternKind kind, std::int64_t ri,
                            std::int64_t rj, std::uint64_t key);

  const PolyMemConfig* config_;
  const maf::Maf* maf_;
  const maf::AddressingFunction* addressing_;
  bool enabled_ = false;
  std::int64_t period_i_ = 1;
  std::int64_t period_j_ = 1;
  std::int64_t row_words_ = 0;   // W/q: address stride of one block row
  std::int64_t delta_i_ = 0;     // (Pi/p) * (W/q): delta per i-period
  std::int64_t delta_j_ = 0;     // Pj/q: delta per j-period
  KindInfo kinds_[6];

  // Template map. Node-based, so PlanTemplate addresses are stable across
  // inserts — lookups hand out raw pointers and memos cache them. Guarded
  // by mutex_: shared for find, exclusive for build+insert. The scratch
  // vector is only touched under the exclusive lock (build path).
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::uint64_t, PlanTemplate> templates_;
  std::vector<access::Coord> coords_scratch_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> builds_{0};
};

}  // namespace polymem::core
