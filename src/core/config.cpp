#include "core/config.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/math.hpp"

namespace polymem::core {

PolyMemConfig PolyMemConfig::with_capacity(std::uint64_t capacity_bytes,
                                           maf::Scheme scheme, unsigned p,
                                           unsigned q, unsigned read_ports,
                                           unsigned data_width_bits) {
  POLYMEM_REQUIRE(is_pow2(capacity_bytes), "capacity must be a power of two");
  POLYMEM_REQUIRE(is_pow2(p) && is_pow2(q),
                  "bank geometry must be powers of two for automatic shapes");
  POLYMEM_REQUIRE(data_width_bits == 32 || data_width_bits == 64,
                  "data width must be 32 or 64 bits");
  const std::uint64_t word_bytes = data_width_bits / 8;
  POLYMEM_REQUIRE(capacity_bytes >= word_bytes * p * q,
                  "capacity must hold at least one element per bank");
  const std::uint64_t words = capacity_bytes / word_bytes;

  // Near-square shape: width = 2^ceil(k/2), height = 2^floor(k/2); then
  // widen/heighten to cover the p/q multiples (powers of two divide evenly).
  const unsigned k = log2_floor(words);
  std::int64_t width = std::int64_t{1} << ((k + 1) / 2);
  std::int64_t height = std::int64_t{1} << (k / 2);
  while (width < q) { width *= 2; height /= 2; }
  while (height < p) { height *= 2; width /= 2; }

  PolyMemConfig cfg;
  cfg.scheme = scheme;
  cfg.p = p;
  cfg.q = q;
  cfg.read_ports = read_ports;
  cfg.data_width_bits = data_width_bits;
  cfg.height = height;
  cfg.width = width;
  cfg.validate();
  POLYMEM_ASSERT(cfg.capacity_bytes() == capacity_bytes);
  return cfg;
}

void PolyMemConfig::validate() const {
  POLYMEM_REQUIRE(p >= 1 && q >= 1, "bank geometry must be at least 1x1");
  POLYMEM_REQUIRE(read_ports >= 1, "at least one read port is required");
  POLYMEM_REQUIRE(read_ports <= 16, "more than 16 read ports is not sensible");
  POLYMEM_REQUIRE(data_width_bits == 32 || data_width_bits == 64,
                  "data width must be 32 or 64 bits");
  POLYMEM_REQUIRE(height >= 1 && width >= 1, "address space must be non-empty");
  POLYMEM_REQUIRE(height % p == 0, "height must be a multiple of p");
  POLYMEM_REQUIRE(width % q == 0, "width must be a multiple of q");
}

std::string PolyMemConfig::describe() const {
  std::ostringstream os;
  os << format_capacity(capacity_bytes()) << ' ' << lanes() << " lanes ("
     << p << 'x' << q << ") " << maf::scheme_name(scheme) << ' ' << read_ports
     << 'R';
  return os.str();
}

}  // namespace polymem::core
