#include "core/agu.hpp"

#include <sstream>

#include "common/error.hpp"

namespace polymem::core {

using access::ParallelAccess;

Agu::Agu(const PolyMemConfig& config, const maf::Maf& maf,
         const maf::AddressingFunction& addressing)
    : config_(&config), maf_(&maf), addressing_(&addressing) {}

void Agu::expand_into(const ParallelAccess& request, AccessPlan& plan) const {
  if (!maf::access_supported(*maf_, request)) {
    std::ostringstream os;
    os << "scheme " << maf::scheme_name(config_->scheme) << " (" << config_->p
       << 'x' << config_->q << ") does not serve pattern "
       << access::pattern_name(request.kind) << " at anchor "
       << request.anchor;
    throw Unsupported(os.str());
  }
  if (!access::fits(request, config_->p, config_->q, config_->height,
                    config_->width)) {
    std::ostringstream os;
    os << "access " << access::pattern_name(request.kind) << " at "
       << request.anchor << " exceeds the " << config_->height << 'x'
       << config_->width << " address space";
    throw InvalidArgument(os.str());
  }

  plan.request = request;
  access::expand_into(request, config_->p, config_->q, plan.coords);
  const unsigned lanes = static_cast<unsigned>(plan.coords.size());
  plan.bank.resize(lanes);
  plan.addr.resize(lanes);
  for (unsigned k = 0; k < lanes; ++k) {
    plan.bank[k] = maf_->bank(plan.coords[k]);
    plan.addr[k] = addressing_->address(plan.coords[k]);
  }
}

AccessPlan Agu::expand(const ParallelAccess& request) const {
  AccessPlan plan;
  expand_into(request, plan);
  return plan;
}

}  // namespace polymem::core
