// Cycle-accurate PolyMem model.
//
// Layers clocking on the functional blocks: per cycle, the memory accepts
// at most one write and one read per read port (all concurrently), and a
// read's data emerges `read_latency` cycles later (14 for the paper's
// STREAM design, Sec. V). This is the model the STREAM benchmark and the
// Fig. 10 reproduction run on.
//
// Usage per cycle:
//     mem.issue_write(where, data);          // optional, at most one
//     mem.issue_read(port, where, tag);      // optional, per port
//     mem.tick();
//     while (auto r = mem.retire_read(port)) { ... r->data ... }
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/polymem.hpp"
#include "hw/pipeline.hpp"

namespace polymem::core {

/// A completed read: the canonical-order data plus the caller's tag
/// (e.g. the destination index the STREAM controller scheduled it for).
struct ReadResponse {
  std::uint64_t tag = 0;
  std::vector<Word> data;
};

class CyclePolyMem {
 public:
  explicit CyclePolyMem(PolyMemConfig config);

  const PolyMemConfig& config() const { return mem_.config(); }
  PolyMem& functional() { return mem_; }
  const PolyMem& functional() const { return mem_; }

  /// Schedules a write for this cycle. Returns false (and does nothing)
  /// when the write port is already claimed this cycle.
  bool issue_write(const access::ParallelAccess& where,
                   std::span<const Word> data);

  /// Schedules a read on `port` for this cycle. Returns false when that
  /// port is already claimed this cycle.
  bool issue_read(unsigned port, const access::ParallelAccess& where,
                  std::uint64_t tag = 0);

  /// Advances one clock cycle: performs the scheduled write and reads
  /// concurrently, pushes read data into the latency pipeline.
  void tick();

  /// Pops the read that completed on `port` this cycle, if any. Call after
  /// tick(); at most one response per port per cycle.
  std::optional<ReadResponse> retire_read(unsigned port);

  /// Runs `n` idle cycles (drains the read pipeline into responses, which
  /// remain claimable via retire_read in order).
  void drain(unsigned port, std::vector<ReadResponse>& out);

  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t reads_issued() const { return reads_issued_; }
  std::uint64_t writes_issued() const { return writes_issued_; }

  /// Cycles where neither a read nor a write was issued.
  std::uint64_t idle_cycles() const { return idle_cycles_; }

 private:
  struct PendingRead {
    access::ParallelAccess where;
    std::uint64_t tag;
  };

  PolyMem mem_;
  // Scheduled-for-this-cycle state.
  std::optional<access::ParallelAccess> write_where_;
  std::vector<Word> write_data_;
  std::vector<std::optional<PendingRead>> read_req_;   // per port
  // In-flight reads (data already routed; delivery delayed).
  std::vector<hw::DelayLine<ReadResponse>> read_pipe_;  // per port
  std::vector<std::optional<ReadResponse>> completed_;  // per port

  std::uint64_t cycles_ = 0;
  std::uint64_t reads_issued_ = 0;
  std::uint64_t writes_issued_ = 0;
  std::uint64_t idle_cycles_ = 0;
};

}  // namespace polymem::core
