// The Address Generation Unit (paper Sec. III-B).
//
// "Based on the (i,j) coordinates and the requested access type AccType,
//  the AGU expands the parallel access in its individual components by
//  computing the coordinates of all the accessed elements."
//
// The AGU also runs the M (MAF) and A (addressing) blocks for each element,
// producing the per-lane bank select and intra-bank address — everything
// the shuffles and banks need to serve the access in one cycle.
#pragma once

#include <vector>

#include "access/pattern.hpp"
#include "core/config.hpp"
#include "maf/addressing.hpp"
#include "maf/conflict.hpp"
#include "maf/maf.hpp"

namespace polymem::core {

/// The fully expanded form of one parallel access. Lane k carries the k-th
/// element in canonical (left-to-right, top-to-bottom) order:
///   coords[k]  — the element's 2D coordinate,
///   bank[k]    — the memory bank storing it (the shuffle select signal),
///   addr[k]    — its intra-bank address.
/// Conflict-freeness makes `bank` a permutation of [0, lanes).
struct AccessPlan {
  access::ParallelAccess request;
  std::vector<access::Coord> coords;
  std::vector<unsigned> bank;
  std::vector<std::int64_t> addr;

  unsigned lanes() const { return static_cast<unsigned>(coords.size()); }

  /// Pre-sizes the per-lane vectors so a warmed plan's expand_into never
  /// reallocates mid-batch (the batch heap-count test's contract).
  void reserve(unsigned lanes) {
    coords.reserve(lanes);
    bank.reserve(lanes);
    addr.reserve(lanes);
  }
};

class Agu {
 public:
  Agu(const PolyMemConfig& config, const maf::Maf& maf,
      const maf::AddressingFunction& addressing);

  /// Expands `request` into an AccessPlan. Throws:
  ///   Unsupported    — the scheme does not serve this pattern (at this
  ///                    anchor, for aligned-only patterns),
  ///   InvalidArgument — the access does not fit the address space.
  AccessPlan expand(const access::ParallelAccess& request) const;

  /// expand() without allocation: reuses the plan's vectors.
  void expand_into(const access::ParallelAccess& request,
                   AccessPlan& plan) const;

 private:
  const PolyMemConfig* config_;
  const maf::Maf* maf_;
  const maf::AddressingFunction* addressing_;
};

}  // namespace polymem::core
