#include "core/banks.hpp"

#include "common/error.hpp"

namespace polymem::core {

BankArray::BankArray(unsigned banks, unsigned read_ports,
                     std::int64_t words_per_bank)
    : banks_(banks), read_ports_(read_ports) {
  POLYMEM_REQUIRE(banks >= 1, "need at least one bank");
  POLYMEM_REQUIRE(read_ports >= 1, "need at least one read port");
  storage_.reserve(static_cast<std::size_t>(banks) * read_ports);
  for (unsigned r = 0; r < read_ports; ++r)
    for (unsigned b = 0; b < banks; ++b) storage_.emplace_back(words_per_bank);
}

hw::BramBank& BankArray::replica(unsigned port, unsigned bank) {
  POLYMEM_REQUIRE(port < read_ports_ && bank < banks_,
                  "bank/port index out of range");
  return storage_[static_cast<std::size_t>(port) * banks_ + bank];
}

const hw::BramBank& BankArray::replica(unsigned port, unsigned bank) const {
  POLYMEM_REQUIRE(port < read_ports_ && bank < banks_,
                  "bank/port index out of range");
  return storage_[static_cast<std::size_t>(port) * banks_ + bank];
}

void BankArray::begin_cycle() {
  for (auto& bank : storage_) bank.begin_cycle();
}

void BankArray::write(std::span<const std::int64_t> per_bank_addr,
                      std::span<const hw::Word> per_bank_data) {
  POLYMEM_REQUIRE(per_bank_addr.size() == banks_ &&
                      per_bank_data.size() == banks_,
                  "per-bank vectors must cover every bank");
  for (unsigned r = 0; r < read_ports_; ++r)
    for (unsigned b = 0; b < banks_; ++b)
      replica(r, b).write(per_bank_addr[b], per_bank_data[b]);
}

void BankArray::read(unsigned port, std::span<const std::int64_t> per_bank_addr,
                     std::span<hw::Word> per_bank_data) {
  POLYMEM_REQUIRE(per_bank_addr.size() == banks_ &&
                      per_bank_data.size() == banks_,
                  "per-bank vectors must cover every bank");
  for (unsigned b = 0; b < banks_; ++b)
    per_bank_data[b] = replica(port, b).read(per_bank_addr[b]);
}

void BankArray::read_shared(unsigned port,
                            std::span<const std::int64_t> per_bank_addr,
                            std::span<hw::Word> per_bank_data) const {
  POLYMEM_REQUIRE(per_bank_addr.size() == banks_ &&
                      per_bank_data.size() == banks_,
                  "per-bank vectors must cover every bank");
  for (unsigned b = 0; b < banks_; ++b)
    per_bank_data[b] = replica(port, b).peek(per_bank_addr[b]);
}

const hw::Word* BankArray::bank_storage(unsigned port, unsigned bank) const {
  return replica(port, bank).data();
}

hw::Word* BankArray::bank_storage(unsigned port, unsigned bank) {
  return replica(port, bank).data();
}

void BankArray::add_bulk_reads(unsigned port, std::uint64_t per_bank) {
  for (unsigned b = 0; b < banks_; ++b)
    replica(port, b).add_bulk_reads(per_bank);
}

void BankArray::add_bulk_writes(std::uint64_t per_bank) {
  for (unsigned r = 0; r < read_ports_; ++r)
    for (unsigned b = 0; b < banks_; ++b)
      replica(r, b).add_bulk_writes(per_bank);
}

hw::Word BankArray::peek(unsigned bank, std::int64_t addr) const {
  return replica(0, bank).peek(addr);
}

void BankArray::poke(unsigned bank, std::int64_t addr, hw::Word value) {
  for (unsigned r = 0; r < read_ports_; ++r) replica(r, bank).poke(addr, value);
}

std::uint64_t BankArray::total_reads() const {
  std::uint64_t n = 0;
  for (const auto& bank : storage_) n += bank.total_reads();
  return n;
}

std::uint64_t BankArray::total_writes() const {
  std::uint64_t n = 0;
  for (const auto& bank : storage_) n += bank.total_writes();
  return n;
}

}  // namespace polymem::core
