#include "core/exec_plan.hpp"

namespace polymem::core {

ExecPlan::Tables& ExecPlan::acquire_table(const PlanTemplate* tmpl,
                                          BankArray& banks) {
  if (used_ == tables_.size()) tables_.emplace_back();
  Tables& t = tables_[used_++];
  t.tmpl = tmpl;
  const unsigned lanes = lanes_;
  const unsigned ports = ports_;
  t.bank.resize(lanes);
  t.lane_for_bank.resize(lanes);
  t.bank_addr0.resize(lanes);
  t.lane_base.resize(static_cast<std::size_t>(ports) * lanes);
  t.bank_base.resize(static_cast<std::size_t>(ports) * lanes);
  for (unsigned k = 0; k < lanes; ++k) {
    t.bank[k] = static_cast<std::int32_t>(tmpl->bank[k]);
    t.lane_for_bank[k] = static_cast<std::uint32_t>(tmpl->lane_for_bank[k]);
    t.bank_addr0[k] = tmpl->bank_addr0[k];
  }
  // Base addresses of a residue class may sit below the bank's first word
  // (the per-anchor delta shifts them back in range); fold them into the
  // table as integers so no out-of-range pointer is ever formed.
  for (unsigned r = 0; r < ports; ++r) {
    const std::size_t row = static_cast<std::size_t>(r) * lanes;
    for (unsigned k = 0; k < lanes; ++k) {
      t.lane_base[row + k] =
          reinterpret_cast<std::uintptr_t>(
              banks.bank_storage(r, tmpl->bank[k])) +
          static_cast<std::uintptr_t>(
              static_cast<std::int64_t>(sizeof(hw::Word)) * tmpl->addr0[k]);
      t.bank_base[row + k] =
          reinterpret_cast<std::uintptr_t>(banks.bank_storage(r, k)) +
          static_cast<std::uintptr_t>(static_cast<std::int64_t>(
                                          sizeof(hw::Word)) *
                                      tmpl->bank_addr0[k]);
    }
  }
  return t;
}

bool ExecPlan::compile(const AccessBatch& batch, PlanCache& cache,
                       BankArray& banks, unsigned lanes) {
  count_ = batch.count();
  lanes_ = lanes;
  ports_ = banks.read_ports();
  used_ = 0;
  tmpl_of_.resize(static_cast<std::size_t>(count_));
  delta_.resize(static_cast<std::size_t>(count_));

  PlanCache::Memo memo;
  std::int32_t last = -1;  // table index the previous access resolved to
  std::int64_t t = 0;
  access::ParallelAccess acc{batch.kind, batch.start};
  for (std::int64_t o = 0; o < batch.outer_count; ++o) {
    acc.anchor = {batch.start.i + o * batch.outer_stride.i,
                  batch.start.j + o * batch.outer_stride.j};
    for (std::int64_t k = 0; k < batch.inner_count; ++k) {
      std::int64_t delta = 0;
      const PlanTemplate* tmpl = cache.lookup(acc, delta, memo);
      if (tmpl == nullptr) return false;
      if (last < 0 || tables_[static_cast<std::size_t>(last)].tmpl != tmpl) {
        last = -1;
        for (std::size_t m = 0; m < used_; ++m) {
          if (tables_[m].tmpl == tmpl) {
            last = static_cast<std::int32_t>(m);
            break;
          }
        }
        if (last < 0) {
          if (used_ == kMaxTables) return false;
          acquire_table(tmpl, banks);
          last = static_cast<std::int32_t>(used_ - 1);
        }
      }
      tmpl_of_[static_cast<std::size_t>(t)] = last;
      delta_[static_cast<std::size_t>(t)] = delta;
      ++t;
      acc.anchor.i += batch.inner_stride.i;
      acc.anchor.j += batch.inner_stride.j;
    }
  }
  return used_ > 0 || count_ == 0;
}

}  // namespace polymem::core
