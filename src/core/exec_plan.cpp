#include "core/exec_plan.hpp"

#include <numeric>

namespace polymem::core {

namespace {

/// Steps of `stride` until the anchor returns to the same residue class
/// modulo the MAF's axis period (1 when the stride never moves the axis).
std::int64_t axis_period(std::int64_t period, std::int64_t stride) {
  if (stride == 0) return 1;
  const std::int64_t magnitude = stride < 0 ? -stride : stride;
  return period / std::gcd(period, magnitude);
}

}  // namespace

ExecPlan::Tables& ExecPlan::acquire_table(const PlanTemplate* tmpl,
                                          BankArray& banks) {
  if (used_ == tables_.size()) tables_.emplace_back();
  // Building into a slot below pool_size_ evicts the retained table that
  // lived there; otherwise the pool grows by the new entry.
  if (used_ >= pool_size_) pool_size_ = used_ + 1;
  Tables& t = tables_[used_++];
  t.tmpl = tmpl;
  const unsigned lanes = lanes_;
  const unsigned ports = ports_;
  t.bank.resize(lanes);
  t.lane_for_bank.resize(lanes);
  t.bank_addr0.resize(lanes);
  t.lane_base.resize(static_cast<std::size_t>(ports) * lanes);
  t.bank_base.resize(static_cast<std::size_t>(ports) * lanes);
  for (unsigned k = 0; k < lanes; ++k) {
    t.bank[k] = static_cast<std::int32_t>(tmpl->bank[k]);
    t.lane_for_bank[k] = static_cast<std::uint32_t>(tmpl->lane_for_bank[k]);
    t.bank_addr0[k] = tmpl->bank_addr0[k];
  }
  // Base addresses of a residue class may sit below the bank's first word
  // (the per-anchor delta shifts them back in range); fold them into the
  // table as integers so no out-of-range pointer is ever formed.
  for (unsigned r = 0; r < ports; ++r) {
    const std::size_t row = static_cast<std::size_t>(r) * lanes;
    for (unsigned k = 0; k < lanes; ++k) {
      t.lane_base[row + k] =
          reinterpret_cast<std::uintptr_t>(
              banks.bank_storage(r, tmpl->bank[k])) +
          static_cast<std::uintptr_t>(
              static_cast<std::int64_t>(sizeof(hw::Word)) * tmpl->addr0[k]);
      t.bank_base[row + k] =
          reinterpret_cast<std::uintptr_t>(banks.bank_storage(r, k)) +
          static_cast<std::uintptr_t>(static_cast<std::int64_t>(
                                          sizeof(hw::Word)) *
                                      tmpl->bank_addr0[k]);
    }
  }
  return t;
}

std::int32_t ExecPlan::resolve_table(const PlanTemplate* tmpl,
                                     BankArray& banks) {
  for (std::size_t m = 0; m < used_; ++m) {
    if (tables_[m].tmpl == tmpl) return static_cast<std::int32_t>(m);
  }
  for (std::size_t m = used_; m < pool_size_; ++m) {
    if (tables_[m].tmpl == tmpl) {
      // Retained from an earlier compile: swap into the live prefix so
      // tmpl_of_ stays dense — no pointer-table rebuild.
      std::swap(tables_[used_], tables_[m]);
      return static_cast<std::int32_t>(used_++);
    }
  }
  if (used_ == kMaxTables) return -1;
  acquire_table(tmpl, banks);
  return static_cast<std::int32_t>(used_ - 1);
}

bool ExecPlan::compile(const AccessBatch& batch, PlanCache& cache,
                       BankArray& banks, unsigned lanes) {
  if (pool_key_ != &banks || lanes_ != lanes ||
      ports_ != banks.read_ports()) {
    pool_size_ = 0;  // pointer tables belong to another memory; rebuild
    pool_key_ = &banks;
  }
  count_ = batch.count();
  lanes_ = lanes;
  ports_ = banks.read_ports();
  used_ = 0;
  tmpl_of_.resize(static_cast<std::size_t>(count_));
  delta_.resize(static_cast<std::size_t>(count_));

  PlanCache::Memo memo;
  std::int32_t last = -1;  // table index the previous access resolved to
  const auto resolve = [&](std::int64_t t,
                           const access::ParallelAccess& acc) -> bool {
    std::int64_t delta = 0;
    const PlanTemplate* tmpl = cache.lookup(acc, delta, memo);
    if (tmpl == nullptr) return false;
    if (last < 0 || tables_[static_cast<std::size_t>(last)].tmpl != tmpl) {
      last = resolve_table(tmpl, banks);
      if (last < 0) return false;
    }
    tmpl_of_[static_cast<std::size_t>(t)] = last;
    delta_[static_cast<std::size_t>(t)] = delta;
    return true;
  };

  access::ParallelAccess acc{batch.kind, batch.start};
  if (batch.outer_count == 1) {
    // Single strided walk — the shape every coalesced service run takes.
    // Anchors repeat their residue class every `period` steps (the MAF's
    // axis periods divided by the stride), and within one class the
    // per-anchor delta is affine in the block coordinates (see
    // plan_cache.hpp), so after resolving one full period plus one
    // access, the rest of the batch is a copy with a constant delta
    // advance — no cache lookups. The caller already bounds-checked the
    // whole batch (PolyMem::validate_batch corner check), so skipping
    // lookup() skips only work, never a safety check.
    const std::int64_t period =
        axis_period(cache.period_i(), batch.inner_stride.i) *
        axis_period(cache.period_j(), batch.inner_stride.j);
    const std::int64_t head =
        (period > 0 && period + 1 < count_) ? period + 1 : count_;
    std::int64_t t = 0;
    for (; t < head; ++t) {
      if (!resolve(t, acc)) return false;
      acc.anchor.i += batch.inner_stride.i;
      acc.anchor.j += batch.inner_stride.j;
    }
    if (t < count_ &&
        tmpl_of_[static_cast<std::size_t>(period)] == tmpl_of_[0]) {
      const std::int64_t advance =
          delta_[static_cast<std::size_t>(period)] - delta_[0];
      for (; t < count_; ++t) {
        const auto cur = static_cast<std::size_t>(t);
        const auto prev = static_cast<std::size_t>(t - period);
        tmpl_of_[cur] = tmpl_of_[prev];
        delta_[cur] = delta_[prev] + advance;
      }
    } else {
      for (; t < count_; ++t) {
        if (!resolve(t, acc)) return false;
        acc.anchor.i += batch.inner_stride.i;
        acc.anchor.j += batch.inner_stride.j;
      }
    }
    return used_ > 0 || count_ == 0;
  }

  std::int64_t t = 0;
  for (std::int64_t o = 0; o < batch.outer_count; ++o) {
    acc.anchor = {batch.start.i + o * batch.outer_stride.i,
                  batch.start.j + o * batch.outer_stride.j};
    for (std::int64_t k = 0; k < batch.inner_count; ++k) {
      if (!resolve(t, acc)) return false;
      ++t;
      acc.anchor.i += batch.inner_stride.i;
      acc.anchor.j += batch.inner_stride.j;
    }
  }
  return used_ > 0 || count_ == 0;
}

}  // namespace polymem::core
