// Tile-frame reservation over the 2D address space.
//
// The out-of-core cache (src/cache) manages PolyMem as a pool of
// fixed-geometry *frames*: equal rectangular slots that each hold one
// matrix tile at a time. FramePool is the core-side reservation of that
// pool — it carves a rectangular region of the address space (paper
// Fig. 2 regions, but with a fixed frame grid) into frames whose origins
// stay aligned to the p x q bank grid, so every frame supports the same
// parallel-access shapes (and reuses the same plan-template residue
// classes) regardless of which tile it currently holds.
#pragma once

#include <cstdint>

#include "access/coord.hpp"
#include "core/config.hpp"

namespace polymem::core {

class FramePool {
 public:
  /// Reserves the `region_rows` x `region_cols` rectangle at `origin` and
  /// partitions it into (region_rows/tile_rows) x (region_cols/tile_cols)
  /// frames of tile_rows x tile_cols elements. Requires: the region lies
  /// inside the address space, tile dimensions divide the region
  /// dimensions, and both the origin and the tile dimensions are aligned
  /// to the bank grid (p | tile_rows and origin.i, q | tile_cols and
  /// origin.j) — the alignment that keeps every frame's access support
  /// identical under aligned-only schemes like RoCo.
  FramePool(const PolyMemConfig& config, access::Coord origin,
            std::int64_t region_rows, std::int64_t region_cols,
            std::int64_t tile_rows, std::int64_t tile_cols);

  /// The whole address space as one frame grid.
  static FramePool whole_space(const PolyMemConfig& config,
                               std::int64_t tile_rows,
                               std::int64_t tile_cols);

  /// A default row-panel tiling of the whole space: full-width frames,
  /// up to four of them (fewer when the space is shallow). This is what
  /// tools report and what callers get when they don't care about the
  /// tile shape.
  static FramePool default_tiling(const PolyMemConfig& config);

  access::Coord origin() const { return origin_; }
  std::int64_t region_rows() const { return region_rows_; }
  std::int64_t region_cols() const { return region_cols_; }
  std::int64_t tile_rows() const { return tile_rows_; }
  std::int64_t tile_cols() const { return tile_cols_; }
  int frames_i() const { return frames_i_; }
  int frames_j() const { return frames_j_; }
  int frames() const { return frames_i_ * frames_j_; }

  /// Words and bytes one frame holds.
  std::int64_t frame_words() const { return tile_rows_ * tile_cols_; }
  std::uint64_t frame_bytes() const {
    return static_cast<std::uint64_t>(frame_words()) * sizeof(std::uint64_t);
  }

  /// PolyMem coordinate of frame `f`'s top-left element (frames are
  /// numbered row-major across the region).
  access::Coord frame_origin(int f) const;

 private:
  access::Coord origin_;
  std::int64_t region_rows_;
  std::int64_t region_cols_;
  std::int64_t tile_rows_;
  std::int64_t tile_cols_;
  int frames_i_;
  int frames_j_;
};

}  // namespace polymem::core
