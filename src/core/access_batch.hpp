// AccessBatch — a strided sequence of parallel accesses.
//
// Split out of core/polymem.hpp so the compiled execution engine
// (core/exec_plan.hpp) can consume batches without pulling in the whole
// PolyMem interface.
#pragma once

#include <cstdint>

#include "access/pattern.hpp"

namespace polymem::core {

/// A strided sequence of parallel accesses, validated once and executed
/// through the compiled engine with no per-access allocation. Anchors
/// form an outer x inner grid walked row-major:
///
///   anchor(o, t) = start + o*outer_stride + t*inner_stride,
///   o in [0, outer_count), t in [0, inner_count).
///
/// This covers the library's bulk walks: a STREAM band is (rows x groups),
/// a matrix load is (rows x row segments), a transpose is the tile grid,
/// a plain 1D sweep is outer_count == 1.
struct AccessBatch {
  access::PatternKind kind = access::PatternKind::kRect;
  access::Coord start;
  access::Coord inner_stride;
  std::int64_t inner_count = 1;
  access::Coord outer_stride;
  std::int64_t outer_count = 1;

  std::int64_t count() const { return inner_count * outer_count; }

  /// The flat-index-t access, t in [0, count()), inner index fastest.
  access::ParallelAccess access(std::int64_t t) const {
    const std::int64_t o = t / inner_count;
    const std::int64_t k = t % inner_count;
    return {kind,
            {start.i + o * outer_stride.i + k * inner_stride.i,
             start.j + o * outer_stride.j + k * inner_stride.j}};
  }

  /// A 1D strided sequence (outer_count == 1).
  static AccessBatch strided(access::PatternKind kind, access::Coord start,
                             access::Coord stride, std::int64_t count) {
    return {kind, start, stride, count, {0, 0}, 1};
  }

  /// Field-wise equality — the key of the compiled-plan memo: equal
  /// batches on the same PolyMem replay the same ExecPlan.
  friend bool operator==(const AccessBatch&, const AccessBatch&) = default;
};

}  // namespace polymem::core
