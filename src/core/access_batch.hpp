// AccessBatch — a strided sequence of parallel accesses.
//
// Split out of core/polymem.hpp so the compiled execution engine
// (core/exec_plan.hpp) can consume batches without pulling in the whole
// PolyMem interface.
#pragma once

#include <cstdint>

#include "access/pattern.hpp"

namespace polymem::core {

/// A strided sequence of parallel accesses, validated once and executed
/// through the compiled engine with no per-access allocation. Anchors
/// form an outer x inner grid walked row-major:
///
///   anchor(o, t) = start + o*outer_stride + t*inner_stride,
///   o in [0, outer_count), t in [0, inner_count).
///
/// This covers the library's bulk walks: a STREAM band is (rows x groups),
/// a matrix load is (rows x row segments), a transpose is the tile grid,
/// a plain 1D sweep is outer_count == 1.
struct AccessBatch {
  access::PatternKind kind = access::PatternKind::kRect;
  access::Coord start;
  access::Coord inner_stride;
  std::int64_t inner_count = 1;
  access::Coord outer_stride;
  std::int64_t outer_count = 1;

  std::int64_t count() const { return inner_count * outer_count; }

  /// The flat-index-t access, t in [0, count()), inner index fastest.
  access::ParallelAccess access(std::int64_t t) const {
    const std::int64_t o = t / inner_count;
    const std::int64_t k = t % inner_count;
    return {kind,
            {start.i + o * outer_stride.i + k * inner_stride.i,
             start.j + o * outer_stride.j + k * inner_stride.j}};
  }

  /// A 1D strided sequence (outer_count == 1).
  static AccessBatch strided(access::PatternKind kind, access::Coord start,
                             access::Coord stride, std::int64_t count) {
    return {kind, start, stride, count, {0, 0}, 1};
  }

  /// Field-wise equality — the key of the compiled-plan memo: equal
  /// batches on the same PolyMem replay the same ExecPlan.
  friend bool operator==(const AccessBatch&, const AccessBatch&) = default;
};

/// Greedy run detector: folds a stream of parallel accesses into maximal
/// constant-stride, same-pattern runs, each expressible as one strided
/// AccessBatch. This is the batch-coalescing entry point of the service
/// layer (src/service): a port queue feeds the accesses it pops in FIFO
/// order, and every emitted run is compiled once and executed as a single
/// gather/scatter — amortizing one ExecPlan over many requests.
///
/// Semantics: the first access opens a run; the second fixes the stride
/// (any value, including zero); each later access must repeat the pattern
/// kind and continue the arithmetic progression. try_add leaves the run
/// untouched when the access does not extend it, so the caller can stop
/// popping, take() the batch, and start the next run with the rejected
/// access.
class BatchCoalescer {
 public:
  bool empty() const { return len_ == 0; }
  std::int64_t size() const { return len_; }

  /// True when `access` joined (or opened) the pending run.
  bool try_add(const access::ParallelAccess& access) {
    if (len_ == 0) {
      kind_ = access.kind;
      start_ = access.anchor;
      len_ = 1;
      return true;
    }
    if (access.kind != kind_) return false;
    if (len_ == 1) {
      stride_ = {access.anchor.i - start_.i, access.anchor.j - start_.j};
      next_ = {access.anchor.i + stride_.i, access.anchor.j + stride_.j};
      len_ = 2;
      return true;
    }
    if (access.anchor != next_) return false;
    next_ = {next_.i + stride_.i, next_.j + stride_.j};
    ++len_;
    return true;
  }

  /// The pending run as a 1D strided batch; resets the coalescer.
  AccessBatch take() {
    const AccessBatch batch = AccessBatch::strided(
        kind_, start_, len_ >= 2 ? stride_ : access::Coord{0, 0}, len_);
    len_ = 0;
    return batch;
  }

 private:
  access::PatternKind kind_ = access::PatternKind::kRect;
  access::Coord start_;
  access::Coord stride_;
  access::Coord next_;
  std::int64_t len_ = 0;
};

}  // namespace polymem::core
