// PolyMem — the polymorphic parallel memory (functional model).
//
// This is the library's primary public API. A PolyMem is a 2D-addressed
// memory of height x width elements spread over p x q banks by a
// conflict-free module assignment function; every read() / write() moves
// p*q elements at once, the way one clock cycle of the hardware does.
//
// The functional model executes each access through the full hardware data
// path of paper Fig. 3 — AGU, MAF/addressing, inverse shuffles, banks with
// per-cycle port accounting, read shuffle — but without timing. For timed
// simulation (latency, concurrent read+write, multi-port scheduling) use
// core/cycle_polymem.hpp, which layers clocking on top of the same blocks.
//
// Two execution engines serve each access (docs/ARCHITECTURE.md,
// "Performance model"):
//  - the *naive* path runs the AGU per access (support probe, bounds
//    check, per-lane MAF + addressing, three shuffles);
//  - the *cached* path (default) replays a memoized plan template
//    (core/plan_cache.hpp) — the MAF is periodic per axis, so the bank
//    permutation and base addresses of an anchor-residue class are
//    computed once and every later access in the class is one table
//    lookup plus one add per bank.
// Both paths are observably identical (differentially tested); the naive
// path remains for unsupported/out-of-bounds error reporting, cache
// overflow, and as the benchmark baseline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "access/pattern.hpp"
#include "core/agu.hpp"
#include "core/banks.hpp"
#include "core/config.hpp"
#include "core/plan_cache.hpp"
#include "hw/bram.hpp"
#include "maf/addressing.hpp"
#include "maf/conflict.hpp"
#include "maf/maf.hpp"

namespace polymem::runtime {
class ThreadPool;
}

namespace polymem::core {

using hw::Word;

/// A strided sequence of parallel accesses, validated once and executed
/// through the cached engine with no per-access allocation. Anchors form
/// an outer x inner grid walked row-major:
///
///   anchor(o, t) = start + o*outer_stride + t*inner_stride,
///   o in [0, outer_count), t in [0, inner_count).
///
/// This covers the library's bulk walks: a STREAM band is (rows x groups),
/// a matrix load is (rows x row segments), a transpose is the tile grid,
/// a plain 1D sweep is outer_count == 1.
struct AccessBatch {
  access::PatternKind kind = access::PatternKind::kRect;
  access::Coord start;
  access::Coord inner_stride;
  std::int64_t inner_count = 1;
  access::Coord outer_stride;
  std::int64_t outer_count = 1;

  std::int64_t count() const { return inner_count * outer_count; }

  /// The flat-index-t access, t in [0, count()), inner index fastest.
  access::ParallelAccess access(std::int64_t t) const {
    const std::int64_t o = t / inner_count;
    const std::int64_t k = t % inner_count;
    return {kind,
            {start.i + o * outer_stride.i + k * inner_stride.i,
             start.j + o * outer_stride.j + k * inner_stride.j}};
  }

  /// A 1D strided sequence (outer_count == 1).
  static AccessBatch strided(access::PatternKind kind, access::Coord start,
                             access::Coord stride, std::int64_t count) {
    return {kind, start, stride, count, {0, 0}, 1};
  }
};

class PolyMem {
 public:
  explicit PolyMem(PolyMemConfig config);

  // Internal blocks hold references to each other; pinned in place.
  PolyMem(const PolyMem&) = delete;
  PolyMem& operator=(const PolyMem&) = delete;

  const PolyMemConfig& config() const { return config_; }
  const maf::Maf& maf() const { return maf_; }
  const maf::AddressingFunction& addressing() const { return addressing_; }
  const Agu& agu() const { return agu_; }
  unsigned lanes() const { return config_.lanes(); }

  /// Machine-checked support level of a pattern under this configuration.
  maf::SupportLevel supports(access::PatternKind pattern) const;

  /// Writes lanes() words (canonical order) through the write port.
  void write(const access::ParallelAccess& where, std::span<const Word> data);

  /// Reads lanes() words (canonical order) through read port `port`.
  std::vector<Word> read(const access::ParallelAccess& where,
                         unsigned port = 0);
  void read_into(const access::ParallelAccess& where, unsigned port,
                 std::span<Word> out);

  /// One concurrent cycle: the read and the write share the cycle, using
  /// the independent read/write bank ports (paper Sec. III-B: "Simultaneous
  /// reads and writes are supported"). Read-before-write semantics when the
  /// two accesses overlap.
  void read_write(const access::ParallelAccess& read_from, unsigned port,
                  std::span<Word> read_out,
                  const access::ParallelAccess& write_to,
                  std::span<const Word> write_data);

  /// Batched access engine: validates the whole batch once (support,
  /// alignment, bounds), then executes `count()` accesses back-to-back
  /// through the plan-template cache with no per-access allocation or
  /// re-validation. Each batch element is its own cycle; results/data are
  /// the concatenation of the per-access canonical lane groups, so
  /// `out`/`data` must hold count() * lanes() words.
  void read_batch(const AccessBatch& batch, unsigned port,
                  std::span<Word> out);
  void write_batch(const AccessBatch& batch, std::span<const Word> data);

  /// Concurrent multi-port batched read: shards the batch across the
  /// pool's threads, each serving its slice on read port
  /// `worker % read_ports` — the host-side mirror of the paper's
  /// replicated read ports answering independent requests in the same
  /// cycle. Results are bit-identical to read_batch (every element lands
  /// in its own `out` slot; all port replicas hold the same data) for any
  /// thread count, including a pool of size 0 (serial).
  ///
  /// Contract: a read-only phase — no concurrent write/store/fill may run
  /// during the call (reads bypass the per-cycle port accounting, which
  /// stays a serial-engine feature; access counters are bulk-added).
  void read_batch_mt(const AccessBatch& batch, runtime::ThreadPool& pool,
                     std::span<Word> out);

  /// Fused copy: per element t, reads `from.access(t)` and writes the data
  /// to `to.access(t)` in the same cycle (read-before-write, like
  /// read_write) — the STREAM-Copy inner loop without the host round trip.
  void stream_copy_batch(const AccessBatch& from, const AccessBatch& to,
                         unsigned port = 0);

  /// Scalar host backdoor (no port accounting; used for Load/Offload and
  /// debugging, like the host filling the memory in the paper's DSE
  /// validation cycle).
  Word load(access::Coord c) const;
  void store(access::Coord c, Word value);

  /// Bulk host helpers: row-major copy of a height x width rectangle at
  /// `origin` from/to a linear buffer. One region bounds check, then
  /// direct bank pokes/peeks (no per-element validation).
  void fill_rect(access::Coord origin, std::int64_t rows, std::int64_t cols,
                 std::span<const Word> values);
  void dump_rect(access::Coord origin, std::int64_t rows, std::int64_t cols,
                 std::span<Word> values) const;

  /// Access counters (one per served parallel access).
  std::uint64_t parallel_reads() const { return parallel_reads_; }
  std::uint64_t parallel_writes() const { return parallel_writes_; }

  /// Toggles the plan-template fast path (default on). The naive AGU path
  /// exists as the differential-test reference and benchmark baseline.
  void set_plan_cache_enabled(bool enabled) { use_plan_cache_ = enabled; }
  bool plan_cache_enabled() const {
    return use_plan_cache_ && plan_cache_.enabled();
  }
  const PlanCache& plan_cache() const { return plan_cache_; }
  PlanCache& plan_cache() { return plan_cache_; }

 private:
  // Scratch buffers sized to lanes(), reused across accesses. `tmpl` is
  // set when the access was planned from a cache template (the template
  // then carries the shuffle permutation), null on the naive path. The
  // plan-cache memo lives here (not in the cache) so each reader thread
  // of the MT engine owns its own single-entry fast path.
  struct Scratch {
    AccessPlan plan;
    const PlanTemplate* tmpl = nullptr;
    PlanCache::Memo memo;
    std::vector<std::int64_t> bank_addr;
    std::vector<Word> bank_data;
  };

  void init_scratch(Scratch& s);
  void plan_and_route_write(const access::ParallelAccess& where,
                            std::span<const Word> data, Scratch& s);
  void plan_read(const access::ParallelAccess& where, Scratch& s);
  void validate_batch(const AccessBatch& batch) const;

  PolyMemConfig config_;
  maf::Maf maf_;
  maf::AddressingFunction addressing_;
  Agu agu_;
  BankArray banks_;
  PlanCache plan_cache_;
  bool use_plan_cache_ = true;
  mutable Scratch scratch_;
  Scratch write_scratch_;          // read_write's concurrent write plan
  std::vector<Scratch> mt_scratch_;  // read_batch_mt: one per participant
  std::vector<Word> copy_buf_;     // stream_copy_batch lane staging
  std::uint64_t parallel_reads_ = 0;
  std::uint64_t parallel_writes_ = 0;
};

}  // namespace polymem::core
