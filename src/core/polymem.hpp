// PolyMem — the polymorphic parallel memory (functional model).
//
// This is the library's primary public API. A PolyMem is a 2D-addressed
// memory of height x width elements spread over p x q banks by a
// conflict-free module assignment function; every read() / write() moves
// p*q elements at once, the way one clock cycle of the hardware does.
//
// The functional model executes each access through the full hardware data
// path of paper Fig. 3 — AGU, MAF/addressing, inverse shuffles, banks with
// per-cycle port accounting, read shuffle — but without timing. For timed
// simulation (latency, concurrent read+write, multi-port scheduling) use
// core/cycle_polymem.hpp, which layers clocking on top of the same blocks.
//
// Three execution engines serve accesses (docs/ARCHITECTURE.md,
// "Performance model" and "SIMD execution engine"):
//  - the *naive* path runs the AGU per access (support probe, bounds
//    check, per-lane MAF + addressing, three shuffles);
//  - the *cached* path replays a memoized plan template
//    (core/plan_cache.hpp) — the MAF is periodic per axis, so the bank
//    permutation and base addresses of an anchor-residue class are
//    computed once and every later access in the class is one table
//    lookup plus one add per bank;
//  - the *compiled* path (default for batches) lowers a whole
//    AccessBatch to flat structure-of-arrays tables (core/exec_plan.hpp)
//    and executes it with CPU-dispatched gather/scatter kernels
//    (core/simd/) — scalar, AVX2 or NEON, selected at startup and
//    overridable via POLYMEM_SIMD / POLYMEM_FORCE_SCALAR.
// All paths are observably identical (differentially tested); the naive
// path remains for unsupported/out-of-bounds error reporting, cache
// overflow, and as the benchmark baseline.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "access/pattern.hpp"
#include "core/access_batch.hpp"
#include "core/agu.hpp"
#include "core/banks.hpp"
#include "core/config.hpp"
#include "core/exec_plan.hpp"
#include "core/plan_cache.hpp"
#include "hw/bram.hpp"
#include "maf/addressing.hpp"
#include "maf/conflict.hpp"
#include "maf/maf.hpp"

namespace polymem::runtime {
class ThreadPool;
}

namespace polymem::core {

using hw::Word;

// AccessBatch lives in core/access_batch.hpp (included above) so the
// compiled execution engine can consume batches without this header.

class PolyMem {
 public:
  explicit PolyMem(PolyMemConfig config);

  // Internal blocks hold references to each other; pinned in place.
  PolyMem(const PolyMem&) = delete;
  PolyMem& operator=(const PolyMem&) = delete;

  const PolyMemConfig& config() const { return config_; }
  const maf::Maf& maf() const { return maf_; }
  const maf::AddressingFunction& addressing() const { return addressing_; }
  const Agu& agu() const { return agu_; }
  unsigned lanes() const { return config_.lanes(); }

  /// Machine-checked support level of a pattern under this configuration.
  maf::SupportLevel supports(access::PatternKind pattern) const;

  /// Writes lanes() words (canonical order) through the write port.
  void write(const access::ParallelAccess& where, std::span<const Word> data);

  /// Reads lanes() words (canonical order) through read port `port`.
  std::vector<Word> read(const access::ParallelAccess& where,
                         unsigned port = 0);
  void read_into(const access::ParallelAccess& where, unsigned port,
                 std::span<Word> out);

  /// One concurrent cycle: the read and the write share the cycle, using
  /// the independent read/write bank ports (paper Sec. III-B: "Simultaneous
  /// reads and writes are supported"). Read-before-write semantics when the
  /// two accesses overlap.
  void read_write(const access::ParallelAccess& read_from, unsigned port,
                  std::span<Word> read_out,
                  const access::ParallelAccess& write_to,
                  std::span<const Word> write_data);

  /// Batched access engine: validates the whole batch once (support,
  /// alignment, bounds), then compiles it to a flat ExecPlan and executes
  /// it with the dispatched gather/scatter kernels (core/simd/) — no
  /// per-access allocation, re-validation or per-bank call. Compiled
  /// plans are memoized per batch, so replaying an equal batch skips
  /// compilation entirely. Batches the plan cache cannot serve fall back
  /// to the interpreted per-access loop (identical results). Each batch
  /// element is its own cycle; results/data are the concatenation of the
  /// per-access canonical lane groups, so `out`/`data` must hold
  /// count() * lanes() words.
  void read_batch(const AccessBatch& batch, unsigned port,
                  std::span<Word> out);
  void write_batch(const AccessBatch& batch, std::span<const Word> data);

  /// Concurrent multi-port batched read: shards the batch across the
  /// pool's threads, each serving its slice on read port
  /// `worker % read_ports` — the host-side mirror of the paper's
  /// replicated read ports answering independent requests in the same
  /// cycle. Results are bit-identical to read_batch (every element lands
  /// in its own `out` slot; all port replicas hold the same data) for any
  /// thread count, including a pool of size 0 (serial).
  ///
  /// Contract: a read-only phase — no concurrent write/store/fill may run
  /// during the call (reads bypass the per-cycle port accounting, which
  /// stays a serial-engine feature; access counters are bulk-added).
  void read_batch_mt(const AccessBatch& batch, runtime::ThreadPool& pool,
                     std::span<Word> out);

  /// Service-drain entry points (src/service): compile a batch into a
  /// *caller-owned* plan and execute it later. The service loop drains a
  /// coalesced run per iteration, and the runs differ call to call, so
  /// the 4-slot replay memo behind read_batch would thrash; a drain that
  /// owns one ExecPlan instead recompiles it in place — ExecPlan reuses
  /// its capacity, so steady-state recompiles allocate nothing. Returns
  /// false (plan unusable; serve the batch per access instead) when the
  /// plan cache cannot supply a template for every access. The plan's
  /// pointer tables stay valid for this PolyMem's lifetime but belong to
  /// this PolyMem only.
  bool compile_batch(const AccessBatch& batch, ExecPlan& plan);

  /// Executes a plan compiled by compile_batch on this PolyMem: the whole
  /// batch as one gather on read port `port` / one scatter, with the same
  /// bulk counter accounting as read_batch / write_batch.
  void read_compiled(const ExecPlan& plan, unsigned port, std::span<Word> out);
  void write_compiled(const ExecPlan& plan, std::span<const Word> data);

  /// Fused copy: per element t, reads `from.access(t)` and writes the data
  /// to `to.access(t)` in the same cycle (read-before-write, like
  /// read_write) — the STREAM-Copy inner loop without the host round trip.
  void stream_copy_batch(const AccessBatch& from, const AccessBatch& to,
                         unsigned port = 0);

  /// Scalar host backdoor (no port accounting; used for Load/Offload and
  /// debugging, like the host filling the memory in the paper's DSE
  /// validation cycle).
  Word load(access::Coord c) const;
  void store(access::Coord c, Word value);

  /// Bulk host helpers: row-major copy of a height x width rectangle at
  /// `origin` from/to a linear buffer. One region bounds check, then
  /// direct bank pokes/peeks (no per-element validation).
  void fill_rect(access::Coord origin, std::int64_t rows, std::int64_t cols,
                 std::span<const Word> values);
  void dump_rect(access::Coord origin, std::int64_t rows, std::int64_t cols,
                 std::span<Word> values) const;

  /// Access counters (one per served parallel access).
  std::uint64_t parallel_reads() const { return parallel_reads_; }
  std::uint64_t parallel_writes() const { return parallel_writes_; }

  /// Toggles the plan-template fast path (default on). The naive AGU path
  /// exists as the differential-test reference and benchmark baseline.
  void set_plan_cache_enabled(bool enabled) { use_plan_cache_ = enabled; }
  bool plan_cache_enabled() const {
    return use_plan_cache_ && plan_cache_.enabled();
  }
  const PlanCache& plan_cache() const { return plan_cache_; }
  PlanCache& plan_cache() { return plan_cache_; }

 private:
  // Scratch buffers sized to lanes(), reused across accesses. `tmpl` is
  // set when the access was planned from a cache template (the template
  // then carries the shuffle permutation), null on the naive path. The
  // plan-cache memo lives here (not in the cache) so each reader thread
  // of the MT engine owns its own single-entry fast path. Cache-line
  // aligned so the per-participant scratches of the MT engine
  // (mt_scratch_) never share a line across worker threads.
  struct alignas(64) Scratch {
    AccessPlan plan;
    const PlanTemplate* tmpl = nullptr;
    PlanCache::Memo memo;
    std::vector<std::int64_t> bank_addr;
    std::vector<Word> bank_data;
  };

  // Compiled-batch memo: a tiny LRU-ish set of recently executed batches
  // and their ExecPlans. Pointer tables inside a plan stay valid for the
  // PolyMem's lifetime (banks and templates are pinned), so replaying an
  // equal batch is pure kernel execution.
  static constexpr std::size_t kExecSlots = 4;
  struct ExecSlot {
    AccessBatch key;
    bool valid = false;
    ExecPlan plan;
  };

  void init_scratch(Scratch& s);
  void plan_and_route_write(const access::ParallelAccess& where,
                            std::span<const Word> data, Scratch& s);
  void plan_read(const access::ParallelAccess& where, Scratch& s);
  void validate_batch(const AccessBatch& batch) const;

  /// The compiled plan serving `batch`: a memo hit, or a fresh compile
  /// into the next slot. Returns nullptr (interpreted engine takes over)
  /// when the plan cache cannot serve the batch. `avoid` pins one plan
  /// (the other half of a fused copy) against eviction.
  ExecPlan* compiled_plan(const AccessBatch& batch,
                          const ExecPlan* avoid = nullptr);
  void exec_read(const ExecPlan& plan, unsigned port, std::int64_t t0,
                 std::int64_t count, Word* out);
  void exec_write(const ExecPlan& plan, std::int64_t t0, std::int64_t count,
                  const Word* data);

  PolyMemConfig config_;
  maf::Maf maf_;
  maf::AddressingFunction addressing_;
  Agu agu_;
  BankArray banks_;
  PlanCache plan_cache_;
  bool use_plan_cache_ = true;
  mutable Scratch scratch_;
  Scratch write_scratch_;          // read_write's concurrent write plan
  std::vector<Scratch> mt_scratch_;  // read_batch_mt: one per participant
  std::vector<Word> copy_buf_;     // stream_copy_batch lane staging
  std::array<ExecSlot, kExecSlots> exec_slots_;
  std::size_t exec_victim_ = 0;    // next slot a fresh compile lands in
  // Per-call kernel argument tables for multi-residue batches (reserved
  // once; bounded by kMaxTables and the port count — see exec_plan.hpp).
  std::vector<const std::uintptr_t*> table_lane_scratch_;
  std::vector<const std::uintptr_t*> table_bank_scratch_;
  std::vector<const std::uint32_t*> table_lfb_scratch_;
  // read_batch_mt: per-port gather tables, [port][table] flattened,
  // built serially before the parallel region.
  std::vector<const std::uintptr_t*> mt_table_scratch_;
  std::uint64_t parallel_reads_ = 0;
  std::uint64_t parallel_writes_ = 0;
};

}  // namespace polymem::core
