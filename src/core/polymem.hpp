// PolyMem — the polymorphic parallel memory (functional model).
//
// This is the library's primary public API. A PolyMem is a 2D-addressed
// memory of height x width elements spread over p x q banks by a
// conflict-free module assignment function; every read() / write() moves
// p*q elements at once, the way one clock cycle of the hardware does.
//
// The functional model executes each access through the full hardware data
// path of paper Fig. 3 — AGU, MAF/addressing, inverse shuffles, banks with
// per-cycle port accounting, read shuffle — but without timing. For timed
// simulation (latency, concurrent read+write, multi-port scheduling) use
// core/cycle_polymem.hpp, which layers clocking on top of the same blocks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "access/pattern.hpp"
#include "core/agu.hpp"
#include "core/banks.hpp"
#include "core/config.hpp"
#include "hw/bram.hpp"
#include "maf/addressing.hpp"
#include "maf/conflict.hpp"
#include "maf/maf.hpp"

namespace polymem::core {

using hw::Word;

class PolyMem {
 public:
  explicit PolyMem(PolyMemConfig config);

  // Internal blocks hold references to each other; pinned in place.
  PolyMem(const PolyMem&) = delete;
  PolyMem& operator=(const PolyMem&) = delete;

  const PolyMemConfig& config() const { return config_; }
  const maf::Maf& maf() const { return maf_; }
  const maf::AddressingFunction& addressing() const { return addressing_; }
  const Agu& agu() const { return agu_; }
  unsigned lanes() const { return config_.lanes(); }

  /// Machine-checked support level of a pattern under this configuration.
  maf::SupportLevel supports(access::PatternKind pattern) const;

  /// Writes lanes() words (canonical order) through the write port.
  void write(const access::ParallelAccess& where, std::span<const Word> data);

  /// Reads lanes() words (canonical order) through read port `port`.
  std::vector<Word> read(const access::ParallelAccess& where,
                         unsigned port = 0);
  void read_into(const access::ParallelAccess& where, unsigned port,
                 std::span<Word> out);

  /// One concurrent cycle: the read and the write share the cycle, using
  /// the independent read/write bank ports (paper Sec. III-B: "Simultaneous
  /// reads and writes are supported"). Read-before-write semantics when the
  /// two accesses overlap.
  void read_write(const access::ParallelAccess& read_from, unsigned port,
                  std::span<Word> read_out,
                  const access::ParallelAccess& write_to,
                  std::span<const Word> write_data);

  /// Scalar host backdoor (no port accounting; used for Load/Offload and
  /// debugging, like the host filling the memory in the paper's DSE
  /// validation cycle).
  Word load(access::Coord c) const;
  void store(access::Coord c, Word value);

  /// Bulk host helpers: row-major copy of a height x width rectangle at
  /// `origin` from/to a linear buffer.
  void fill_rect(access::Coord origin, std::int64_t rows, std::int64_t cols,
                 std::span<const Word> values);
  void dump_rect(access::Coord origin, std::int64_t rows, std::int64_t cols,
                 std::span<Word> values) const;

  /// Access counters (one per served parallel access).
  std::uint64_t parallel_reads() const { return parallel_reads_; }
  std::uint64_t parallel_writes() const { return parallel_writes_; }

 private:
  // Scratch buffers sized to lanes(), reused across accesses.
  struct Scratch {
    AccessPlan plan;
    std::vector<std::int64_t> bank_addr;
    std::vector<Word> bank_data;
  };

  void plan_and_route_write(const access::ParallelAccess& where,
                            std::span<const Word> data, Scratch& s);
  void plan_read(const access::ParallelAccess& where, Scratch& s);

  PolyMemConfig config_;
  maf::Maf maf_;
  maf::AddressingFunction addressing_;
  Agu agu_;
  BankArray banks_;
  mutable Scratch scratch_;
  std::uint64_t parallel_reads_ = 0;
  std::uint64_t parallel_writes_ = 0;
};

}  // namespace polymem::core
