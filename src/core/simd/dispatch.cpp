#include "core/simd/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "core/simd/kernels.hpp"

namespace polymem::core::simd {

namespace {

// -1 = not yet initialised from the environment.
std::atomic<int> g_active{-1};

bool env_truthy(const char* value) {
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

Level clamp_to_host(Level requested) {
  switch (requested) {
    case Level::kAvx2:
      return avx2_supported() ? Level::kAvx2 : Level::kScalar;
    case Level::kNeon:
      return neon_supported() ? Level::kNeon : Level::kScalar;
    case Level::kScalar:
      return Level::kScalar;
  }
  return Level::kScalar;
}

Level level_from_env() {
  if (env_truthy(std::getenv("POLYMEM_FORCE_SCALAR"))) return Level::kScalar;
  const char* request = std::getenv("POLYMEM_SIMD");
  if (request == nullptr || std::strcmp(request, "auto") == 0)
    return detected_level();
  if (std::strcmp(request, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(request, "avx2") == 0) return clamp_to_host(Level::kAvx2);
  if (std::strcmp(request, "neon") == 0) return clamp_to_host(Level::kNeon);
  // Unknown value: fail safe to auto-detection rather than aborting a
  // production process over a typo.
  return detected_level();
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "unknown";
}

Level detected_level() {
  if (avx2_supported()) return Level::kAvx2;
  if (neon_supported()) return Level::kNeon;
  return Level::kScalar;
}

Level active_level() {
  int level = g_active.load(std::memory_order_acquire);
  if (level < 0) {
    // Racing initialisers compute the same value; last store wins.
    level = static_cast<int>(level_from_env());
    g_active.store(level, std::memory_order_release);
  }
  return static_cast<Level>(level);
}

void force_level(Level level) {
  g_active.store(static_cast<int>(clamp_to_host(level)),
                 std::memory_order_release);
}

const Kernels& kernels_for(Level level) {
  switch (clamp_to_host(level)) {
    case Level::kAvx2:
      return avx2_kernels();
    case Level::kNeon:
      return neon_kernels();
    case Level::kScalar:
      break;
  }
  return scalar_kernels();
}

const Kernels& kernels() { return kernels_for(active_level()); }

}  // namespace polymem::core::simd
