// Scalar reference kernels: the portable fallback every SIMD level must
// match bit-for-bit (tests/core/simd_exec_test.cpp), and the default on
// hosts without AVX2/NEON or under POLYMEM_FORCE_SCALAR.
//
// Even "scalar" is the fast path relative to the pre-compiled engine: one
// access is `lanes` independent loads off a flat pointer table — no bank
// objects, no port accounting, no per-lane function calls — which the
// compiler unrolls and schedules freely.
#include "core/simd/kernels.hpp"

namespace polymem::core::simd {

namespace {

inline const Word* word_at(std::uintptr_t base, std::int64_t delta_bytes) {
  return reinterpret_cast<const Word*>(
      base + static_cast<std::uintptr_t>(delta_bytes));
}

inline Word* mut_word_at(std::uintptr_t base, std::int64_t delta_bytes) {
  return reinterpret_cast<Word*>(base +
                                 static_cast<std::uintptr_t>(delta_bytes));
}

void gather_run(const std::uintptr_t* lane_base, unsigned lanes,
                const std::int64_t* delta, std::int64_t count, Word* out) {
  for (std::int64_t t = 0; t < count; ++t) {
    const std::int64_t db =
        delta[t] * static_cast<std::int64_t>(sizeof(Word));
    Word* o = out + static_cast<std::size_t>(t) * lanes;
    for (unsigned k = 0; k < lanes; ++k) o[k] = *word_at(lane_base[k], db);
  }
}

void gather_multi(const std::uintptr_t* const* table_lane_base,
                  const std::int32_t* tmpl_of, unsigned lanes,
                  const std::int64_t* delta, std::int64_t count, Word* out) {
  for (std::int64_t t = 0; t < count; ++t) {
    const std::uintptr_t* lane_base = table_lane_base[tmpl_of[t]];
    const std::int64_t db =
        delta[t] * static_cast<std::int64_t>(sizeof(Word));
    Word* o = out + static_cast<std::size_t>(t) * lanes;
    for (unsigned k = 0; k < lanes; ++k) o[k] = *word_at(lane_base[k], db);
  }
}

inline void scatter_one(const std::uintptr_t* bank_base, unsigned replicas,
                        const std::uint32_t* lane_for_bank, unsigned lanes,
                        std::int64_t db, const Word* d) {
  for (unsigned r = 0; r < replicas; ++r) {
    const std::uintptr_t* base = bank_base + static_cast<std::size_t>(r) * lanes;
    for (unsigned b = 0; b < lanes; ++b)
      *mut_word_at(base[b], db) = d[lane_for_bank[b]];
  }
}

void scatter_run(const std::uintptr_t* bank_base, unsigned replicas,
                 const std::uint32_t* lane_for_bank, unsigned lanes,
                 const std::int64_t* delta, std::int64_t count,
                 const Word* data) {
  for (std::int64_t t = 0; t < count; ++t)
    scatter_one(bank_base, replicas, lane_for_bank, lanes,
                delta[t] * static_cast<std::int64_t>(sizeof(Word)),
                data + static_cast<std::size_t>(t) * lanes);
}

void scatter_multi(const std::uintptr_t* const* table_bank_base,
                   const std::uint32_t* const* table_lane_for_bank,
                   const std::int32_t* tmpl_of, unsigned replicas,
                   unsigned lanes, const std::int64_t* delta,
                   std::int64_t count, const Word* data) {
  for (std::int64_t t = 0; t < count; ++t) {
    const std::int32_t m = tmpl_of[t];
    scatter_one(table_bank_base[m], replicas, table_lane_for_bank[m], lanes,
                delta[t] * static_cast<std::int64_t>(sizeof(Word)),
                data + static_cast<std::size_t>(t) * lanes);
  }
}

}  // namespace

const Kernels& scalar_kernels() {
  static const Kernels k{Level::kScalar, gather_run, gather_multi,
                         scatter_run, scatter_multi};
  return k;
}

}  // namespace polymem::core::simd
