// Cache-line aligned flat buffers for the compiled execution engine.
//
// The ExecPlan (core/exec_plan.hpp) stores everything the gather/scatter
// kernels touch — bank indices, address deltas, pointer tables — as flat
// arrays so the hot loop is pure arithmetic over contiguous memory. This
// minimal vector keeps those arrays 64-byte aligned (one table never
// straddles a line needlessly, vector loads can use aligned forms) and
// guarantees that resizing *within capacity* never allocates, which is
// what the batch heap-count test (tests/core/batch_alloc_test.cpp)
// enforces for the steady state.
//
// Only trivially-copyable element types are supported: grow copies bytes
// and destructors are never run per element.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace polymem::core::simd {

inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class AlignedVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedVec holds flat SIMD tables: trivially copyable only");

 public:
  AlignedVec() = default;
  ~AlignedVec() { deallocate(); }

  AlignedVec(const AlignedVec&) = delete;
  AlignedVec& operator=(const AlignedVec&) = delete;

  AlignedVec(AlignedVec&& other) noexcept { swap(other); }
  AlignedVec& operator=(AlignedVec&& other) noexcept {
    if (this != &other) {
      deallocate();
      size_ = 0;
      cap_ = 0;
      swap(other);
    }
    return *this;
  }

  T* data() { return ptr_; }
  const T* data() const { return ptr_; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t k) { return ptr_[k]; }
  const T& operator[](std::size_t k) const { return ptr_[k]; }

  T* begin() { return ptr_; }
  T* end() { return ptr_ + size_; }
  const T* begin() const { return ptr_; }
  const T* end() const { return ptr_ + size_; }

  /// Grows capacity to at least `n` (geometric); never shrinks.
  void reserve(std::size_t n) {
    if (n <= cap_) return;
    std::size_t cap = cap_ ? cap_ : 8;
    while (cap < n) cap *= 2;
    T* p = static_cast<T*>(::operator new(
        cap * sizeof(T), std::align_val_t{kCacheLine}));
    if (size_ > 0) std::memcpy(p, ptr_, size_ * sizeof(T));
    deallocate();
    ptr_ = p;
    cap_ = cap;
  }

  /// Sets the size; new elements are uninitialised (callers overwrite).
  /// Allocation-free whenever `n <= capacity()`.
  void resize(std::size_t n) {
    reserve(n);
    size_ = n;
  }

  void clear() { size_ = 0; }

 private:
  void deallocate() {
    if (ptr_ != nullptr)
      ::operator delete(ptr_, std::align_val_t{kCacheLine});
  }

  void swap(AlignedVec& other) noexcept {
    std::swap(ptr_, other.ptr_);
    std::swap(size_, other.size_);
    std::swap(cap_, other.cap_);
  }

  T* ptr_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace polymem::core::simd
