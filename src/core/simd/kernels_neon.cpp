// NEON (aarch64) kernels, compile-time guarded: AArch64 has no gather
// instruction, so the loads stay scalar and NEON contributes paired
// 128-bit stores plus the flat, branch-free table walk. Bit-identical to
// the scalar kernels by construction (same loads, same order); the
// differential suite still checks it where the build runs on ARM.
#include "core/simd/kernels.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)
#define POLYMEM_HAVE_NEON_BUILD 1
#include <arm_neon.h>
#endif

namespace polymem::core::simd {

#if defined(POLYMEM_HAVE_NEON_BUILD)

namespace {

inline const Word* word_at(std::uintptr_t base, std::int64_t delta_bytes) {
  return reinterpret_cast<const Word*>(
      base + static_cast<std::uintptr_t>(delta_bytes));
}

inline void gather_one(const std::uintptr_t* lane_base, unsigned lanes,
                       std::int64_t db, Word* o) {
  const unsigned vec = lanes & ~1u;
  unsigned k = 0;
  for (; k < vec; k += 2) {
    uint64x2_t v = vdupq_n_u64(*word_at(lane_base[k], db));
    v = vsetq_lane_u64(*word_at(lane_base[k + 1], db), v, 1);
    vst1q_u64(o + k, v);
  }
  for (; k < lanes; ++k) o[k] = *word_at(lane_base[k], db);
}

void gather_run(const std::uintptr_t* lane_base, unsigned lanes,
                const std::int64_t* delta, std::int64_t count, Word* out) {
  for (std::int64_t t = 0; t < count; ++t)
    gather_one(lane_base, lanes,
               delta[t] * static_cast<std::int64_t>(sizeof(Word)),
               out + static_cast<std::size_t>(t) * lanes);
}

void gather_multi(const std::uintptr_t* const* table_lane_base,
                  const std::int32_t* tmpl_of, unsigned lanes,
                  const std::int64_t* delta, std::int64_t count, Word* out) {
  for (std::int64_t t = 0; t < count; ++t)
    gather_one(table_lane_base[tmpl_of[t]], lanes,
               delta[t] * static_cast<std::int64_t>(sizeof(Word)),
               out + static_cast<std::size_t>(t) * lanes);
}

inline void scatter_one(const std::uintptr_t* bank_base, unsigned replicas,
                        const std::uint32_t* lane_for_bank, unsigned lanes,
                        std::int64_t db, const Word* d) {
  for (unsigned r = 0; r < replicas; ++r) {
    const std::uintptr_t* base =
        bank_base + static_cast<std::size_t>(r) * lanes;
    for (unsigned b = 0; b < lanes; ++b)
      *reinterpret_cast<Word*>(base[b] + static_cast<std::uintptr_t>(db)) =
          d[lane_for_bank[b]];
  }
}

void scatter_run(const std::uintptr_t* bank_base, unsigned replicas,
                 const std::uint32_t* lane_for_bank, unsigned lanes,
                 const std::int64_t* delta, std::int64_t count,
                 const Word* data) {
  for (std::int64_t t = 0; t < count; ++t)
    scatter_one(bank_base, replicas, lane_for_bank, lanes,
                delta[t] * static_cast<std::int64_t>(sizeof(Word)),
                data + static_cast<std::size_t>(t) * lanes);
}

void scatter_multi(const std::uintptr_t* const* table_bank_base,
                   const std::uint32_t* const* table_lane_for_bank,
                   const std::int32_t* tmpl_of, unsigned replicas,
                   unsigned lanes, const std::int64_t* delta,
                   std::int64_t count, const Word* data) {
  for (std::int64_t t = 0; t < count; ++t) {
    const std::int32_t m = tmpl_of[t];
    scatter_one(table_bank_base[m], replicas, table_lane_for_bank[m], lanes,
                delta[t] * static_cast<std::int64_t>(sizeof(Word)),
                data + static_cast<std::size_t>(t) * lanes);
  }
}

}  // namespace

bool neon_supported() { return true; }

const Kernels& neon_kernels() {
  static const Kernels k{Level::kNeon, gather_run, gather_multi, scatter_run,
                         scatter_multi};
  return k;
}

#else  // !POLYMEM_HAVE_NEON_BUILD

bool neon_supported() { return false; }

const Kernels& neon_kernels() { return scalar_kernels(); }

#endif

}  // namespace polymem::core::simd
