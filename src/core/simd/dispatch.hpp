// Runtime CPU dispatch for the compiled batch-execution kernels.
//
// The shuffle stage of a compiled access plan is a static permutation
// (core/exec_plan.hpp), so executing one parallel access is a gather —
// lane k loads `*(lane_base[k] + delta)` — and a batched write is the
// mirror scatter. Three kernel families implement that loop:
//
//   scalar — portable C++, the reference the differential suite compares
//            SIMD output against bit-for-bit, and the default on hosts
//            without AVX2/NEON;
//   avx2   — x86-64 `vpgatherqq`-based gathers (compiled with a function
//            target attribute, so the library itself needs no -mavx2);
//   neon   — aarch64: vectorised stores around scalar loads (NEON has no
//            gather instruction; the win is the flat table walk).
//
// The level is detected once at first use and can be overridden:
//   POLYMEM_FORCE_SCALAR=1     — force the scalar kernels,
//   POLYMEM_SIMD=scalar|avx2|neon|auto — request a level explicitly
//                                 (clamped to what the host supports).
// Tests force levels programmatically via force_level() so the fallback
// path stays exercised on AVX2 hosts.
//
// Pointer tables are carried as std::uintptr_t, not T*: residue-class
// base addresses may sit below a bank's first word (the per-anchor delta
// shifts them back into range), and integer arithmetic keeps that
// intermediate state well-defined — the value is only converted back to
// a pointer at dereference time, where it is in-bounds by construction.
#pragma once

#include <cstdint>

#include "hw/bram.hpp"

namespace polymem::core::simd {

using hw::Word;

enum class Level : int { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// "scalar" / "avx2" / "neon" — for logs, benches and tests.
const char* level_name(Level level);

/// Best level the host CPU (and this build) supports.
Level detected_level();

/// The level the kernels() table currently serves: detected_level()
/// filtered through the environment knobs, or the last force_level().
Level active_level();

/// Overrides the active level (clamped to detected_level(); requesting
/// e.g. AVX2 on a non-AVX2 host keeps scalar). Test/bench hook — call it
/// only between batch operations, not concurrently with them.
void force_level(Level level);

// Kernel signatures. All tables are flat arrays built by the ExecPlan
// compiler; `delta[t]` is access t's word offset from the table's base
// pointers, `lanes` the number of elements per parallel access and
// `count` the number of accesses in the run.

/// Gather a run of accesses sharing one lane table:
///   out[t*lanes + k] = word at (lane_base[k] + delta[t] words)
using GatherRunFn = void (*)(const std::uintptr_t* lane_base, unsigned lanes,
                             const std::int64_t* delta, std::int64_t count,
                             Word* out);

/// Gather with a per-access table: table_lane_base[tmpl_of[t]] replaces
/// the shared lane_base (mixed-residue batches).
using GatherMultiFn = void (*)(const std::uintptr_t* const* table_lane_base,
                               const std::int32_t* tmpl_of, unsigned lanes,
                               const std::int64_t* delta, std::int64_t count,
                               Word* out);

/// Scatter a run of write accesses sharing one bank table. `bank_base`
/// holds `replicas * lanes` entries ([replica][bank] flattened: every
/// read-port replica stores the same data); lane_for_bank is the inverse
/// permutation routing canonical data words to banks:
///   word at (bank_base[r*lanes + b] + delta[t]) = data[t*lanes + lane_for_bank[b]]
using ScatterRunFn = void (*)(const std::uintptr_t* bank_base,
                              unsigned replicas,
                              const std::uint32_t* lane_for_bank,
                              unsigned lanes, const std::int64_t* delta,
                              std::int64_t count, const Word* data);

/// Scatter with per-access tables (mixed-residue batches).
using ScatterMultiFn = void (*)(const std::uintptr_t* const* table_bank_base,
                                const std::uint32_t* const* table_lane_for_bank,
                                const std::int32_t* tmpl_of, unsigned replicas,
                                unsigned lanes, const std::int64_t* delta,
                                std::int64_t count, const Word* data);

struct Kernels {
  Level level = Level::kScalar;
  GatherRunFn gather_run = nullptr;
  GatherMultiFn gather_multi = nullptr;
  ScatterRunFn scatter_run = nullptr;
  ScatterMultiFn scatter_multi = nullptr;
};

/// The kernel table for the active level. Re-read per batch operation so
/// force_level() takes effect immediately.
const Kernels& kernels();

/// The kernel table for a specific (host-supported) level — benches
/// compare levels side by side without flipping global state.
const Kernels& kernels_for(Level level);

}  // namespace polymem::core::simd
