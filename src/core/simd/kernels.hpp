// Internal: per-level kernel table constructors (see dispatch.hpp for the
// kernel contracts). Each translation unit provides one level; a level a
// build cannot produce (AVX2 on aarch64, NEON on x86) reports itself
// unavailable and dispatch falls back to scalar.
#pragma once

#include "core/simd/dispatch.hpp"

namespace polymem::core::simd {

const Kernels& scalar_kernels();

bool avx2_supported();  // build-time and run-time (cpuid) support
const Kernels& avx2_kernels();

bool neon_supported();
const Kernels& neon_kernels();

}  // namespace polymem::core::simd
