// AVX2 kernels: 4-lane 64-bit gathers (`vpgatherqq`) over the ExecPlan's
// flat pointer tables.
//
// The pointer table itself is the gather index vector: with a null base
// and scale 1, `_mm256_i64gather_epi64` loads from the four absolute
// addresses `lane_base[k..k+3] + delta` directly. All addresses are
// word-aligned (tables point at Word arrays, deltas are word offsets), so
// the gathers are UBSan-clean; intermediate below-base values exist only
// as integers (see dispatch.hpp).
//
// AVX2 has no scatter instruction. The write kernels vectorise the data
// *permutation* (a gather of the canonical data words through
// lane_for_bank) and issue the bank stores scalar — on the simulator the
// permutation and the flat table walk are where the time goes.
//
// Everything is compiled behind function-level `target("avx2")`
// attributes, so the library builds (and the scalar path runs) on any
// x86-64 toolchain without global -mavx2; kernels_for(kAvx2) is handed
// out only when cpuid reports AVX2.
#include "core/simd/kernels.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define POLYMEM_HAVE_AVX2_BUILD 1
#include <immintrin.h>
#endif

namespace polymem::core::simd {

#if defined(POLYMEM_HAVE_AVX2_BUILD)

namespace {

__attribute__((target("avx2"))) inline __m256i gather4(
    const std::uintptr_t* lane_base, unsigned k, __m256i delta_bytes) {
  __m256i ptrs = _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(lane_base + k));
  ptrs = _mm256_add_epi64(ptrs, delta_bytes);
  return _mm256_i64gather_epi64(static_cast<const long long*>(nullptr),
                                ptrs, 1);
}

__attribute__((target("avx2"))) void gather_run(
    const std::uintptr_t* lane_base, unsigned lanes,
    const std::int64_t* delta, std::int64_t count, Word* out) {
  const unsigned vec = lanes & ~3u;
  for (std::int64_t t = 0; t < count; ++t) {
    const std::int64_t db =
        delta[t] * static_cast<std::int64_t>(sizeof(Word));
    const __m256i dv = _mm256_set1_epi64x(db);
    Word* o = out + static_cast<std::size_t>(t) * lanes;
    unsigned k = 0;
    for (; k < vec; k += 4)
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + k),
                          gather4(lane_base, k, dv));
    for (; k < lanes; ++k)
      o[k] = *reinterpret_cast<const Word*>(
          lane_base[k] + static_cast<std::uintptr_t>(db));
  }
}

__attribute__((target("avx2"))) void gather_multi(
    const std::uintptr_t* const* table_lane_base, const std::int32_t* tmpl_of,
    unsigned lanes, const std::int64_t* delta, std::int64_t count,
    Word* out) {
  const unsigned vec = lanes & ~3u;
  for (std::int64_t t = 0; t < count; ++t) {
    const std::uintptr_t* lane_base = table_lane_base[tmpl_of[t]];
    const std::int64_t db =
        delta[t] * static_cast<std::int64_t>(sizeof(Word));
    const __m256i dv = _mm256_set1_epi64x(db);
    Word* o = out + static_cast<std::size_t>(t) * lanes;
    unsigned k = 0;
    for (; k < vec; k += 4)
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + k),
                          gather4(lane_base, k, dv));
    for (; k < lanes; ++k)
      o[k] = *reinterpret_cast<const Word*>(
          lane_base[k] + static_cast<std::uintptr_t>(db));
  }
}

// One write access: permute the canonical data words into bank order with
// vectorised index gathers, then store per bank (scalar; every replica
// stores the same permuted word).
__attribute__((target("avx2"))) inline void scatter_one(
    const std::uintptr_t* bank_base, unsigned replicas,
    const std::uint32_t* lane_for_bank, unsigned lanes, std::int64_t db,
    const Word* d) {
  alignas(32) Word permuted[4];
  const unsigned vec = lanes & ~3u;
  unsigned b = 0;
  for (; b < vec; b += 4) {
    const __m128i idx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(lane_for_bank + b));
    const __m256i v = _mm256_i32gather_epi64(
        reinterpret_cast<const long long*>(d), idx, 8);
    _mm256_store_si256(reinterpret_cast<__m256i*>(permuted), v);
    for (unsigned r = 0; r < replicas; ++r) {
      const std::uintptr_t* base =
          bank_base + static_cast<std::size_t>(r) * lanes;
      for (unsigned u = 0; u < 4; ++u)
        *reinterpret_cast<Word*>(base[b + u] +
                                 static_cast<std::uintptr_t>(db)) =
            permuted[u];
    }
  }
  for (; b < lanes; ++b) {
    const Word w = d[lane_for_bank[b]];
    for (unsigned r = 0; r < replicas; ++r)
      *reinterpret_cast<Word*>(
          bank_base[static_cast<std::size_t>(r) * lanes + b] +
          static_cast<std::uintptr_t>(db)) = w;
  }
}

__attribute__((target("avx2"))) void scatter_run(
    const std::uintptr_t* bank_base, unsigned replicas,
    const std::uint32_t* lane_for_bank, unsigned lanes,
    const std::int64_t* delta, std::int64_t count, const Word* data) {
  for (std::int64_t t = 0; t < count; ++t)
    scatter_one(bank_base, replicas, lane_for_bank, lanes,
                delta[t] * static_cast<std::int64_t>(sizeof(Word)),
                data + static_cast<std::size_t>(t) * lanes);
}

__attribute__((target("avx2"))) void scatter_multi(
    const std::uintptr_t* const* table_bank_base,
    const std::uint32_t* const* table_lane_for_bank,
    const std::int32_t* tmpl_of, unsigned replicas, unsigned lanes,
    const std::int64_t* delta, std::int64_t count, const Word* data) {
  for (std::int64_t t = 0; t < count; ++t) {
    const std::int32_t m = tmpl_of[t];
    scatter_one(table_bank_base[m], replicas, table_lane_for_bank[m], lanes,
                delta[t] * static_cast<std::int64_t>(sizeof(Word)),
                data + static_cast<std::size_t>(t) * lanes);
  }
}

}  // namespace

bool avx2_supported() { return __builtin_cpu_supports("avx2") != 0; }

const Kernels& avx2_kernels() {
  static const Kernels k{Level::kAvx2, gather_run, gather_multi, scatter_run,
                         scatter_multi};
  return k;
}

#else  // !POLYMEM_HAVE_AVX2_BUILD

bool avx2_supported() { return false; }

const Kernels& avx2_kernels() { return scalar_kernels(); }

#endif

}  // namespace polymem::core::simd
