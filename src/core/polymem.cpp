#include "core/polymem.hpp"

#include <sstream>

#include <algorithm>

#include "common/error.hpp"
#include "core/shuffle.hpp"
#include "core/simd/dispatch.hpp"
#include "runtime/thread_pool.hpp"

namespace polymem::core {

PolyMem::PolyMem(PolyMemConfig config)
    : config_((config.validate(), config)),
      maf_(config.scheme, config.p, config.q),
      addressing_(config.p, config.q, config.height, config.width),
      agu_(config_, maf_, addressing_),
      banks_(config.lanes(), config.read_ports, config.words_per_bank()),
      plan_cache_(config_, maf_, addressing_) {
  init_scratch(scratch_);
  init_scratch(write_scratch_);
  copy_buf_.resize(config_.lanes());
  // Kernel argument tables for multi-residue batches: bounded by the
  // table cap and port count, so one reservation covers every call.
  table_lane_scratch_.reserve(ExecPlan::kMaxTables);
  table_bank_scratch_.reserve(ExecPlan::kMaxTables);
  table_lfb_scratch_.reserve(ExecPlan::kMaxTables);
  mt_table_scratch_.reserve(ExecPlan::kMaxTables * config_.read_ports);
}

void PolyMem::init_scratch(Scratch& s) {
  // Sized once here; every later access reuses the buffers (the AGU's
  // resize calls become no-ops and expansion never reallocates).
  const unsigned lanes = config_.lanes();
  s.plan.reserve(lanes);
  s.bank_addr.resize(lanes);
  s.bank_data.resize(lanes);
}

maf::SupportLevel PolyMem::supports(access::PatternKind pattern) const {
  return maf::probe_support(maf_, pattern);
}

void PolyMem::plan_and_route_write(const access::ParallelAccess& where,
                                   std::span<const Word> data, Scratch& s) {
  POLYMEM_REQUIRE(data.size() == config_.lanes(),
                  "write data must provide one word per lane");
  if (use_plan_cache_) {
    std::int64_t delta;
    if (const PlanTemplate* t = plan_cache_.lookup(where, delta, s.memo)) {
      const unsigned lanes = config_.lanes();
      for (unsigned b = 0; b < lanes; ++b) {
        s.bank_addr[b] = t->bank_addr0[b] + delta;
        s.bank_data[b] = data[t->lane_for_bank[b]];
      }
      s.tmpl = t;
      return;
    }
  }
  s.tmpl = nullptr;
  agu_.expand_into(where, s.plan);
  address_shuffle(s.plan, s.bank_addr);
  write_data_shuffle(s.plan, data, s.bank_data);
}

void PolyMem::plan_read(const access::ParallelAccess& where, Scratch& s) {
  if (use_plan_cache_) {
    std::int64_t delta;
    if (const PlanTemplate* t = plan_cache_.lookup(where, delta, s.memo)) {
      const unsigned lanes = config_.lanes();
      for (unsigned b = 0; b < lanes; ++b)
        s.bank_addr[b] = t->bank_addr0[b] + delta;
      s.tmpl = t;
      return;
    }
  }
  // Fallback: the naive AGU path — also the error-reporting path for
  // unsupported patterns and out-of-bounds accesses.
  s.tmpl = nullptr;
  agu_.expand_into(where, s.plan);
  address_shuffle(s.plan, s.bank_addr);
}

void PolyMem::write(const access::ParallelAccess& where,
                    std::span<const Word> data) {
  plan_and_route_write(where, data, scratch_);
  banks_.begin_cycle();
  banks_.write(scratch_.bank_addr, scratch_.bank_data);
  ++parallel_writes_;
}

void PolyMem::read_into(const access::ParallelAccess& where, unsigned port,
                        std::span<Word> out) {
  POLYMEM_REQUIRE(port < config_.read_ports, "read port out of range");
  POLYMEM_REQUIRE(out.size() == config_.lanes(),
                  "read buffer must provide one word per lane");
  plan_read(where, scratch_);
  banks_.begin_cycle();
  banks_.read(port, scratch_.bank_addr, scratch_.bank_data);
  if (scratch_.tmpl) {
    // The template's permutation was validated at build time; route the
    // lanes directly instead of through the checked crossbar model.
    const unsigned lanes = config_.lanes();
    for (unsigned k = 0; k < lanes; ++k)
      out[k] = scratch_.bank_data[scratch_.tmpl->bank[k]];
  } else {
    read_data_shuffle(scratch_.plan, scratch_.bank_data, out);
  }
  ++parallel_reads_;
}

std::vector<Word> PolyMem::read(const access::ParallelAccess& where,
                                unsigned port) {
  std::vector<Word> out(config_.lanes());
  read_into(where, port, out);
  return out;
}

void PolyMem::read_write(const access::ParallelAccess& read_from,
                         unsigned port, std::span<Word> read_out,
                         const access::ParallelAccess& write_to,
                         std::span<const Word> write_data) {
  POLYMEM_REQUIRE(port < config_.read_ports, "read port out of range");
  POLYMEM_REQUIRE(read_out.size() == config_.lanes() &&
                      write_data.size() == config_.lanes(),
                  "buffers must provide one word per lane");
  // The read and the write of the same cycle each need their own plan;
  // both live in member scratch, so steady state allocates nothing.
  plan_read(read_from, scratch_);
  plan_and_route_write(write_to, write_data, write_scratch_);

  banks_.begin_cycle();
  // Read first: an overlapping concurrent write lands *after* the read,
  // matching BRAM read-first port behaviour.
  banks_.read(port, scratch_.bank_addr, scratch_.bank_data);
  if (scratch_.tmpl) {
    const unsigned lanes = config_.lanes();
    for (unsigned k = 0; k < lanes; ++k)
      read_out[k] = scratch_.bank_data[scratch_.tmpl->bank[k]];
  } else {
    read_data_shuffle(scratch_.plan, scratch_.bank_data, read_out);
  }
  banks_.write(write_scratch_.bank_addr, write_scratch_.bank_data);
  ++parallel_reads_;
  ++parallel_writes_;
}

void PolyMem::validate_batch(const AccessBatch& batch) const {
  POLYMEM_REQUIRE(batch.inner_count >= 0 && batch.outer_count >= 0,
                  "batch counts must be non-negative");
  if (batch.count() == 0) return;
  const maf::SupportLevel level = maf::probe_support(maf_, batch.kind);
  if (level == maf::SupportLevel::kNone) {
    std::ostringstream os;
    os << "scheme " << maf::scheme_name(config_.scheme) << " (" << config_.p
       << 'x' << config_.q << ") does not serve pattern "
       << access::pattern_name(batch.kind);
    throw Unsupported(os.str());
  }
  if (level == maf::SupportLevel::kAligned) {
    const auto p = static_cast<std::int64_t>(config_.p);
    const auto q = static_cast<std::int64_t>(config_.q);
    const bool aligned =
        batch.start.i % p == 0 && batch.start.j % q == 0 &&
        batch.inner_stride.i % p == 0 && batch.inner_stride.j % q == 0 &&
        batch.outer_stride.i % p == 0 && batch.outer_stride.j % q == 0;
    if (!aligned) {
      std::ostringstream os;
      os << "scheme " << maf::scheme_name(config_.scheme) << " (" << config_.p
         << 'x' << config_.q << ") serves pattern "
         << access::pattern_name(batch.kind)
         << " only at p/q-aligned anchors; batch start or strides break "
            "alignment";
      throw Unsupported(os.str());
    }
  }
  // Anchor coordinates are affine in the (inner, outer) index box, so the
  // per-axis extremes — all `fits` cares about — occur at the corners.
  for (int corner = 0; corner < 4; ++corner) {
    const std::int64_t k = (corner & 1) ? batch.inner_count - 1 : 0;
    const std::int64_t o = (corner & 2) ? batch.outer_count - 1 : 0;
    const access::Coord anchor{
        batch.start.i + o * batch.outer_stride.i + k * batch.inner_stride.i,
        batch.start.j + o * batch.outer_stride.j + k * batch.inner_stride.j};
    if (!access::fits({batch.kind, anchor}, config_.p, config_.q,
                      config_.height, config_.width)) {
      std::ostringstream os;
      os << "batch access " << access::pattern_name(batch.kind) << " at "
         << anchor << " exceeds the " << config_.height << 'x'
         << config_.width << " address space";
      throw InvalidArgument(os.str());
    }
  }
}

ExecPlan* PolyMem::compiled_plan(const AccessBatch& batch,
                                 const ExecPlan* avoid) {
  if (!use_plan_cache_ || !plan_cache_.enabled()) return nullptr;
  for (ExecSlot& slot : exec_slots_)
    if (slot.valid && slot.key == batch) return &slot.plan;
  if (avoid != nullptr && &exec_slots_[exec_victim_].plan == avoid)
    exec_victim_ = (exec_victim_ + 1) % kExecSlots;
  ExecSlot& slot = exec_slots_[exec_victim_];
  if (!slot.plan.compile(batch, plan_cache_, banks_, config_.lanes())) {
    slot.valid = false;
    return nullptr;
  }
  slot.key = batch;
  slot.valid = true;
  exec_victim_ = (exec_victim_ + 1) % kExecSlots;
  return &slot.plan;
}

void PolyMem::exec_read(const ExecPlan& plan, unsigned port, std::int64_t t0,
                        std::int64_t count, Word* out) {
  const simd::Kernels& kernels = simd::kernels();
  const unsigned lanes = plan.lanes();
  if (plan.uniform()) {
    kernels.gather_run(plan.lane_base(0, port), lanes, plan.delta() + t0,
                       count, out);
    return;
  }
  const std::size_t tables = plan.table_count();
  table_lane_scratch_.resize(tables);
  for (std::size_t m = 0; m < tables; ++m)
    table_lane_scratch_[m] = plan.lane_base(m, port);
  kernels.gather_multi(table_lane_scratch_.data(), plan.tmpl_of() + t0,
                       lanes, plan.delta() + t0, count, out);
}

void PolyMem::exec_write(const ExecPlan& plan, std::int64_t t0,
                         std::int64_t count, const Word* data) {
  const simd::Kernels& kernels = simd::kernels();
  const unsigned lanes = plan.lanes();
  const unsigned replicas = plan.ports();
  if (plan.uniform()) {
    const ExecPlan::Tables& t = plan.table(0);
    kernels.scatter_run(t.bank_base.data(), replicas, t.lane_for_bank.data(),
                        lanes, plan.delta() + t0, count, data);
    return;
  }
  const std::size_t tables = plan.table_count();
  table_bank_scratch_.resize(tables);
  table_lfb_scratch_.resize(tables);
  for (std::size_t m = 0; m < tables; ++m) {
    table_bank_scratch_[m] = plan.table(m).bank_base.data();
    table_lfb_scratch_[m] = plan.table(m).lane_for_bank.data();
  }
  kernels.scatter_multi(table_bank_scratch_.data(), table_lfb_scratch_.data(),
                        plan.tmpl_of() + t0, replicas, lanes,
                        plan.delta() + t0, count, data);
}

void PolyMem::read_batch(const AccessBatch& batch, unsigned port,
                         std::span<Word> out) {
  POLYMEM_REQUIRE(port < config_.read_ports, "read port out of range");
  validate_batch(batch);
  const unsigned lanes = config_.lanes();
  POLYMEM_REQUIRE(out.size() == static_cast<std::size_t>(batch.count()) * lanes,
                  "batch read buffer must provide count * lanes words");
  if (batch.count() == 0) return;
  if (ExecPlan* plan = compiled_plan(batch)) {
    exec_read(*plan, port, 0, plan->count(), out.data());
    // Bulk accounting: one read of every bank of replica `port` per
    // access (conflict-freedom was proven at template build time, so the
    // per-cycle handshake carries no information here).
    banks_.add_bulk_reads(port, static_cast<std::uint64_t>(plan->count()));
    parallel_reads_ += static_cast<std::uint64_t>(plan->count());
    return;
  }
  Word* chunk = out.data();
  access::ParallelAccess acc{batch.kind, batch.start};
  for (std::int64_t o = 0; o < batch.outer_count; ++o) {
    acc.anchor = {batch.start.i + o * batch.outer_stride.i,
                  batch.start.j + o * batch.outer_stride.j};
    for (std::int64_t t = 0; t < batch.inner_count; ++t) {
      plan_read(acc, scratch_);
      banks_.begin_cycle();
      banks_.read(port, scratch_.bank_addr, scratch_.bank_data);
      const unsigned* bank = scratch_.tmpl ? scratch_.tmpl->bank.data()
                                           : scratch_.plan.bank.data();
      for (unsigned k = 0; k < lanes; ++k)
        chunk[k] = scratch_.bank_data[bank[k]];
      chunk += lanes;
      ++parallel_reads_;
      acc.anchor.i += batch.inner_stride.i;
      acc.anchor.j += batch.inner_stride.j;
    }
  }
}

bool PolyMem::compile_batch(const AccessBatch& batch, ExecPlan& plan) {
  validate_batch(batch);
  if (batch.count() == 0 || !use_plan_cache_ || !plan_cache_.enabled())
    return false;
  return plan.compile(batch, plan_cache_, banks_, config_.lanes());
}

void PolyMem::read_compiled(const ExecPlan& plan, unsigned port,
                            std::span<Word> out) {
  POLYMEM_REQUIRE(port < config_.read_ports, "read port out of range");
  POLYMEM_REQUIRE(
      out.size() == static_cast<std::size_t>(plan.count()) * plan.lanes(),
      "batch read buffer must provide count * lanes words");
  exec_read(plan, port, 0, plan.count(), out.data());
  banks_.add_bulk_reads(port, static_cast<std::uint64_t>(plan.count()));
  parallel_reads_ += static_cast<std::uint64_t>(plan.count());
}

void PolyMem::write_compiled(const ExecPlan& plan,
                             std::span<const Word> data) {
  POLYMEM_REQUIRE(
      data.size() == static_cast<std::size_t>(plan.count()) * plan.lanes(),
      "batch write buffer must provide count * lanes words");
  exec_write(plan, 0, plan.count(), data.data());
  banks_.add_bulk_writes(static_cast<std::uint64_t>(plan.count()));
  parallel_writes_ += static_cast<std::uint64_t>(plan.count());
}

void PolyMem::read_batch_mt(const AccessBatch& batch,
                            runtime::ThreadPool& pool, std::span<Word> out) {
  validate_batch(batch);
  const unsigned lanes = config_.lanes();
  POLYMEM_REQUIRE(out.size() == static_cast<std::size_t>(batch.count()) * lanes,
                  "batch read buffer must provide count * lanes words");
  if (batch.count() == 0) return;
  const unsigned ports = config_.read_ports;
  Word* const base = out.data();
  // Claim whole inner rows when the batch is 2D, else modest chunks: long
  // enough to amortise the claim lock, short enough to steal.
  const std::int64_t grain =
      batch.outer_count > 1 ? batch.inner_count
                            : std::clamp<std::int64_t>(batch.count() / 64, 16, 1024);
  if (ExecPlan* plan = compiled_plan(batch)) {
    // Compiled path: one serial compile (or memo hit), then the workers
    // split the batch into grain-sized chunks and run one kernel call
    // per chunk — results land slot-addressed, so output is bit-identical
    // to read_batch for any thread count. Reads go to the worker's port
    // replica, the same data-race-free contract as read_shared.
    const std::size_t tables = plan->table_count();
    if (!plan->uniform()) {
      mt_table_scratch_.resize(static_cast<std::size_t>(ports) * tables);
      for (unsigned r = 0; r < ports; ++r)
        for (std::size_t m = 0; m < tables; ++m)
          mt_table_scratch_[static_cast<std::size_t>(r) * tables + m] =
              plan->lane_base(m, r);
    }
    const simd::Kernels& kernels = simd::kernels();
    const std::int64_t count = plan->count();
    const std::int64_t chunks = (count + grain - 1) / grain;
    runtime::parallel_for(
        pool, 0, chunks,
        [&](std::int64_t c, unsigned worker) {
          const std::int64_t t0 = c * grain;
          const std::int64_t n = std::min(count - t0, grain);
          const unsigned port = worker % ports;
          if (plan->uniform()) {
            kernels.gather_run(plan->lane_base(0, port), lanes,
                               plan->delta() + t0, n, base + t0 * lanes);
          } else {
            kernels.gather_multi(
                mt_table_scratch_.data() +
                    static_cast<std::size_t>(port) * tables,
                plan->tmpl_of() + t0, lanes, plan->delta() + t0, n,
                base + t0 * lanes);
          }
        },
        1);
    parallel_reads_ += static_cast<std::uint64_t>(count);
    return;
  }
  // One Scratch per participant (pool workers + the calling thread),
  // allocated before the parallel region so the hot loop allocates
  // nothing. Existing scratches survive resizes untouched in content;
  // their memoized template pointers stay valid (templates are pinned).
  const unsigned participants = pool.size() + 1;
  while (mt_scratch_.size() < participants) {
    mt_scratch_.emplace_back();
    init_scratch(mt_scratch_.back());
  }
  runtime::parallel_for(
      pool, 0, batch.count(),
      [&](std::int64_t t, unsigned worker) {
        Scratch& s = mt_scratch_[worker];
        const unsigned port = worker % ports;
        plan_read(batch.access(t), s);
        banks_.read_shared(port, s.bank_addr, s.bank_data);
        const unsigned* bank =
            s.tmpl ? s.tmpl->bank.data() : s.plan.bank.data();
        Word* chunk = base + t * lanes;
        for (unsigned k = 0; k < lanes; ++k) chunk[k] = s.bank_data[bank[k]];
      },
      grain);
  parallel_reads_ += static_cast<std::uint64_t>(batch.count());
}

void PolyMem::write_batch(const AccessBatch& batch,
                          std::span<const Word> data) {
  validate_batch(batch);
  const unsigned lanes = config_.lanes();
  POLYMEM_REQUIRE(
      data.size() == static_cast<std::size_t>(batch.count()) * lanes,
      "batch write buffer must provide count * lanes words");
  if (batch.count() == 0) return;
  if (ExecPlan* plan = compiled_plan(batch)) {
    exec_write(*plan, 0, plan->count(), data.data());
    // Every replica of every bank takes one write per access, exactly as
    // the interpreted loop would issue them.
    banks_.add_bulk_writes(static_cast<std::uint64_t>(plan->count()));
    parallel_writes_ += static_cast<std::uint64_t>(plan->count());
    return;
  }
  const Word* chunk = data.data();
  access::ParallelAccess acc{batch.kind, batch.start};
  for (std::int64_t o = 0; o < batch.outer_count; ++o) {
    acc.anchor = {batch.start.i + o * batch.outer_stride.i,
                  batch.start.j + o * batch.outer_stride.j};
    for (std::int64_t t = 0; t < batch.inner_count; ++t) {
      plan_and_route_write(acc, std::span<const Word>(chunk, lanes),
                           scratch_);
      banks_.begin_cycle();
      banks_.write(scratch_.bank_addr, scratch_.bank_data);
      chunk += lanes;
      ++parallel_writes_;
      acc.anchor.i += batch.inner_stride.i;
      acc.anchor.j += batch.inner_stride.j;
    }
  }
}

void PolyMem::stream_copy_batch(const AccessBatch& from,
                                const AccessBatch& to, unsigned port) {
  POLYMEM_REQUIRE(port < config_.read_ports, "read port out of range");
  POLYMEM_REQUIRE(from.count() == to.count(),
                  "copy batches must have equal access counts");
  validate_batch(from);
  validate_batch(to);
  const unsigned lanes = config_.lanes();
  if (from.count() == 0) return;
  // Fused compiled path: both halves compile, then each element is one
  // gather into the lane buffer and one scatter out of it — preserving
  // the read-before-write-per-cycle semantics for overlapping batches.
  if (ExecPlan* rd = compiled_plan(from)) {
    if (ExecPlan* wr = compiled_plan(to, /*avoid=*/rd)) {
      const std::int64_t count = rd->count();
      for (std::int64_t t = 0; t < count; ++t) {
        exec_read(*rd, port, t, 1, copy_buf_.data());
        exec_write(*wr, t, 1, copy_buf_.data());
      }
      banks_.add_bulk_reads(port, static_cast<std::uint64_t>(count));
      banks_.add_bulk_writes(static_cast<std::uint64_t>(count));
      parallel_reads_ += static_cast<std::uint64_t>(count);
      parallel_writes_ += static_cast<std::uint64_t>(count);
      return;
    }
  }
  access::ParallelAccess src{from.kind, from.start};
  access::ParallelAccess dst{to.kind, to.start};
  for (std::int64_t o = 0; o < from.outer_count; ++o) {
    src.anchor = {from.start.i + o * from.outer_stride.i,
                  from.start.j + o * from.outer_stride.j};
    for (std::int64_t t = 0; t < from.inner_count; ++t) {
      const std::int64_t flat = o * from.inner_count + t;
      dst.anchor = to.access(flat).anchor;
      plan_read(src, scratch_);
      banks_.begin_cycle();
      banks_.read(port, scratch_.bank_addr, scratch_.bank_data);
      const unsigned* bank = scratch_.tmpl ? scratch_.tmpl->bank.data()
                                           : scratch_.plan.bank.data();
      for (unsigned k = 0; k < lanes; ++k)
        copy_buf_[k] = scratch_.bank_data[bank[k]];
      plan_and_route_write(dst, copy_buf_, write_scratch_);
      banks_.write(write_scratch_.bank_addr, write_scratch_.bank_data);
      ++parallel_reads_;
      ++parallel_writes_;
      src.anchor.i += from.inner_stride.i;
      src.anchor.j += from.inner_stride.j;
    }
  }
}

Word PolyMem::load(access::Coord c) const {
  POLYMEM_REQUIRE(addressing_.in_bounds(c), "coordinate out of bounds");
  return banks_.peek(maf_.bank(c), addressing_.address(c));
}

void PolyMem::store(access::Coord c, Word value) {
  POLYMEM_REQUIRE(addressing_.in_bounds(c), "coordinate out of bounds");
  banks_.poke(maf_.bank(c), addressing_.address(c), value);
}

void PolyMem::fill_rect(access::Coord origin, std::int64_t rows,
                        std::int64_t cols, std::span<const Word> values) {
  POLYMEM_REQUIRE(rows >= 0 && cols >= 0,
                  "rectangle extents must be non-negative");
  POLYMEM_REQUIRE(values.size() ==
                      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
                  "value buffer must match the rectangle size");
  if (rows == 0 || cols == 0) return;
  POLYMEM_REQUIRE(addressing_.in_bounds(origin) &&
                      addressing_.in_bounds(
                          {origin.i + rows - 1, origin.j + cols - 1}),
                  "rectangle exceeds the address space");
  std::size_t k = 0;
  for (std::int64_t u = 0; u < rows; ++u) {
    const std::int64_t i = origin.i + u;
    for (std::int64_t v = 0; v < cols; ++v) {
      const std::int64_t j = origin.j + v;
      banks_.poke(maf_.bank(i, j), addressing_.address(i, j), values[k++]);
    }
  }
}

void PolyMem::dump_rect(access::Coord origin, std::int64_t rows,
                        std::int64_t cols, std::span<Word> values) const {
  POLYMEM_REQUIRE(rows >= 0 && cols >= 0,
                  "rectangle extents must be non-negative");
  POLYMEM_REQUIRE(values.size() ==
                      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
                  "value buffer must match the rectangle size");
  if (rows == 0 || cols == 0) return;
  POLYMEM_REQUIRE(addressing_.in_bounds(origin) &&
                      addressing_.in_bounds(
                          {origin.i + rows - 1, origin.j + cols - 1}),
                  "rectangle exceeds the address space");
  std::size_t k = 0;
  for (std::int64_t u = 0; u < rows; ++u) {
    const std::int64_t i = origin.i + u;
    for (std::int64_t v = 0; v < cols; ++v) {
      const std::int64_t j = origin.j + v;
      values[k++] = banks_.peek(maf_.bank(i, j), addressing_.address(i, j));
    }
  }
}

}  // namespace polymem::core
