#include "core/polymem.hpp"

#include "common/error.hpp"
#include "core/shuffle.hpp"

namespace polymem::core {

PolyMem::PolyMem(PolyMemConfig config)
    : config_((config.validate(), config)),
      maf_(config.scheme, config.p, config.q),
      addressing_(config.p, config.q, config.height, config.width),
      agu_(config_, maf_, addressing_),
      banks_(config.lanes(), config.read_ports, config.words_per_bank()) {
  scratch_.bank_addr.resize(config.lanes());
  scratch_.bank_data.resize(config.lanes());
}

maf::SupportLevel PolyMem::supports(access::PatternKind pattern) const {
  return maf::probe_support(maf_, pattern);
}

void PolyMem::plan_and_route_write(const access::ParallelAccess& where,
                                   std::span<const Word> data, Scratch& s) {
  POLYMEM_REQUIRE(data.size() == config_.lanes(),
                  "write data must provide one word per lane");
  agu_.expand_into(where, s.plan);
  address_shuffle(s.plan, s.bank_addr);
  write_data_shuffle(s.plan, data, s.bank_data);
}

void PolyMem::plan_read(const access::ParallelAccess& where, Scratch& s) {
  agu_.expand_into(where, s.plan);
  address_shuffle(s.plan, s.bank_addr);
}

void PolyMem::write(const access::ParallelAccess& where,
                    std::span<const Word> data) {
  plan_and_route_write(where, data, scratch_);
  banks_.begin_cycle();
  banks_.write(scratch_.bank_addr, scratch_.bank_data);
  ++parallel_writes_;
}

void PolyMem::read_into(const access::ParallelAccess& where, unsigned port,
                        std::span<Word> out) {
  POLYMEM_REQUIRE(port < config_.read_ports, "read port out of range");
  POLYMEM_REQUIRE(out.size() == config_.lanes(),
                  "read buffer must provide one word per lane");
  plan_read(where, scratch_);
  banks_.begin_cycle();
  banks_.read(port, scratch_.bank_addr, scratch_.bank_data);
  read_data_shuffle(scratch_.plan, scratch_.bank_data, out);
  ++parallel_reads_;
}

std::vector<Word> PolyMem::read(const access::ParallelAccess& where,
                                unsigned port) {
  std::vector<Word> out(config_.lanes());
  read_into(where, port, out);
  return out;
}

void PolyMem::read_write(const access::ParallelAccess& read_from,
                         unsigned port, std::span<Word> read_out,
                         const access::ParallelAccess& write_to,
                         std::span<const Word> write_data) {
  POLYMEM_REQUIRE(port < config_.read_ports, "read port out of range");
  POLYMEM_REQUIRE(read_out.size() == config_.lanes() &&
                      write_data.size() == config_.lanes(),
                  "buffers must provide one word per lane");
  // The read and the write of the same cycle each need their own plan.
  Scratch write_scratch;
  write_scratch.bank_addr.resize(config_.lanes());
  write_scratch.bank_data.resize(config_.lanes());
  plan_read(read_from, scratch_);
  plan_and_route_write(write_to, write_data, write_scratch);

  banks_.begin_cycle();
  // Read first: an overlapping concurrent write lands *after* the read,
  // matching BRAM read-first port behaviour.
  banks_.read(port, scratch_.bank_addr, scratch_.bank_data);
  read_data_shuffle(scratch_.plan, scratch_.bank_data, read_out);
  banks_.write(write_scratch.bank_addr, write_scratch.bank_data);
  ++parallel_reads_;
  ++parallel_writes_;
}

Word PolyMem::load(access::Coord c) const {
  POLYMEM_REQUIRE(addressing_.in_bounds(c), "coordinate out of bounds");
  return banks_.peek(maf_.bank(c), addressing_.address(c));
}

void PolyMem::store(access::Coord c, Word value) {
  POLYMEM_REQUIRE(addressing_.in_bounds(c), "coordinate out of bounds");
  banks_.poke(maf_.bank(c), addressing_.address(c), value);
}

void PolyMem::fill_rect(access::Coord origin, std::int64_t rows,
                        std::int64_t cols, std::span<const Word> values) {
  POLYMEM_REQUIRE(values.size() ==
                      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
                  "value buffer must match the rectangle size");
  std::size_t k = 0;
  for (std::int64_t u = 0; u < rows; ++u)
    for (std::int64_t v = 0; v < cols; ++v)
      store({origin.i + u, origin.j + v}, values[k++]);
}

void PolyMem::dump_rect(access::Coord origin, std::int64_t rows,
                        std::int64_t cols, std::span<Word> values) const {
  POLYMEM_REQUIRE(values.size() ==
                      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
                  "value buffer must match the rectangle size");
  std::size_t k = 0;
  for (std::int64_t u = 0; u < rows; ++u)
    for (std::int64_t v = 0; v < cols; ++v)
      values[k++] = load({origin.i + u, origin.j + v});
}

}  // namespace polymem::core
