#include "core/frame_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace polymem::core {

FramePool::FramePool(const PolyMemConfig& config, access::Coord origin,
                     std::int64_t region_rows, std::int64_t region_cols,
                     std::int64_t tile_rows, std::int64_t tile_cols)
    : origin_(origin),
      region_rows_(region_rows),
      region_cols_(region_cols),
      tile_rows_(tile_rows),
      tile_cols_(tile_cols) {
  const auto p = static_cast<std::int64_t>(config.p);
  const auto q = static_cast<std::int64_t>(config.q);
  POLYMEM_REQUIRE(tile_rows >= 1 && tile_cols >= 1,
                  "frame tile must be non-empty");
  POLYMEM_REQUIRE(region_rows >= tile_rows && region_cols >= tile_cols,
                  "frame region smaller than one tile");
  POLYMEM_REQUIRE(origin.i >= 0 && origin.j >= 0 &&
                      origin.i + region_rows <= config.height &&
                      origin.j + region_cols <= config.width,
                  "frame region exceeds the PolyMem address space");
  POLYMEM_REQUIRE(tile_rows % p == 0 && origin.i % p == 0,
                  "frame rows must align to the p bank rows");
  POLYMEM_REQUIRE(tile_cols % q == 0 && origin.j % q == 0,
                  "frame columns must align to the q bank columns");
  POLYMEM_REQUIRE(region_rows % tile_rows == 0 &&
                      region_cols % tile_cols == 0,
                  "tile dimensions must divide the frame region");
  frames_i_ = static_cast<int>(region_rows / tile_rows);
  frames_j_ = static_cast<int>(region_cols / tile_cols);
}

FramePool FramePool::whole_space(const PolyMemConfig& config,
                                 std::int64_t tile_rows,
                                 std::int64_t tile_cols) {
  return FramePool(config, {0, 0}, config.height, config.width, tile_rows,
                   tile_cols);
}

FramePool FramePool::default_tiling(const PolyMemConfig& config) {
  const auto p = static_cast<std::int64_t>(config.p);
  // Up to four full-width row panels; height and p are powers of two, so
  // height / frames is always a p multiple when frames <= height / p.
  const std::int64_t frames = std::min<std::int64_t>(4, config.height / p);
  return whole_space(config, config.height / frames, config.width);
}

access::Coord FramePool::frame_origin(int f) const {
  POLYMEM_REQUIRE(f >= 0 && f < frames(), "frame index out of range");
  return {origin_.i + (f / frames_j_) * tile_rows_,
          origin_.j + (f % frames_j_) * tile_cols_};
}

}  // namespace polymem::core
