// The three shuffle networks of MAX-PolyMem (paper Fig. 3).
//
// Lanes carry data in canonical order; banks are indexed by the MAF. The
// AccessPlan's `bank` vector is simultaneously the reordering signal of all
// three crossbars:
//
//   Address Shuffle     (inverse) : bank b receives the address of the lane
//                                   whose element lives in b.
//   Write Data Shuffle  (inverse) : bank b receives that lane's data word.
//   Read Data Shuffle   (regular) : lane k receives the word read from
//                                   bank[k].
//
// "the Write Data Shuffle is implemented using an inverse Shuffle, while
//  the Read Data Shuffle is implemented using a regular Shuffle."
#pragma once

#include <span>

#include "core/agu.hpp"
#include "hw/bram.hpp"
#include "hw/crossbar.hpp"

namespace polymem::core {

/// Routes per-lane intra-bank addresses to per-bank address inputs.
inline void address_shuffle(const AccessPlan& plan,
                            std::span<std::int64_t> per_bank_addr) {
  hw::inverse_shuffle<std::int64_t>(plan.addr, plan.bank, per_bank_addr);
}

/// Routes canonical-order input data to per-bank data inputs.
inline void write_data_shuffle(const AccessPlan& plan,
                               std::span<const hw::Word> data_in,
                               std::span<hw::Word> per_bank_data) {
  hw::inverse_shuffle<hw::Word>(data_in, plan.bank, per_bank_data);
}

/// Restores canonical order on data coming out of the banks.
inline void read_data_shuffle(const AccessPlan& plan,
                              std::span<const hw::Word> per_bank_data,
                              std::span<hw::Word> data_out) {
  hw::shuffle<hw::Word>(per_bank_data, plan.bank, data_out);
}

}  // namespace polymem::core
