// PolyMem configuration (paper Sec. III-A).
//
// "A configuration consists of a storage capacity C (e.g., 512KB),
//  distributed in p x q memory lanes, a PRF access scheme, and the number
//  of read ports."
//
// In addition this model fixes the 2D address-space shape (height x width
// elements): the hardware derives per-bank depth from it, and the
// addressing function needs the row width. `with_capacity` derives a
// near-square shape automatically, as the paper's designs do.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "maf/scheme.hpp"

namespace polymem::core {

struct PolyMemConfig {
  maf::Scheme scheme = maf::Scheme::kReRo;
  unsigned p = 2;                  ///< vertical bank-grid dimension
  unsigned q = 4;                  ///< horizontal bank-grid dimension
  unsigned read_ports = 1;         ///< independent parallel read ports
  unsigned data_width_bits = 64;   ///< logical element width
  std::int64_t height = 0;         ///< address-space rows (multiple of p)
  std::int64_t width = 0;          ///< address-space columns (multiple of q)
  unsigned read_latency = 14;      ///< pipeline read latency in cycles
                                   ///< (paper Sec. V: 14 for the Vectis design)

  /// Lanes per port: elements moved per cycle per data port.
  unsigned lanes() const { return p * q; }

  /// Logical capacity in bytes (one copy of the data).
  std::uint64_t capacity_bytes() const {
    return static_cast<std::uint64_t>(height) * width * (data_width_bits / 8);
  }

  /// Physical storage in bytes including per-read-port bank replication
  /// ("increasing the number of read ports involved duplicating data in
  /// BRAMs", paper Sec. IV-C).
  std::uint64_t physical_bytes() const {
    return capacity_bytes() * read_ports;
  }

  std::int64_t words_per_bank() const {
    return (height / p) * (width / q);
  }

  /// The same geometry under a different access scheme — the *polymorphic*
  /// step the adaptive layout engine (src/adapt) takes at migration time:
  /// capacity, lanes, ports and shape are invariants of a migration, only
  /// the MAF changes.
  PolyMemConfig with_scheme(maf::Scheme new_scheme) const {
    PolyMemConfig out = *this;
    out.scheme = new_scheme;
    return out;
  }

  /// Derives a configuration with the given logical capacity and a
  /// near-square height x width shape. Capacity, p and q must be powers of
  /// two (as all the paper's design points are).
  static PolyMemConfig with_capacity(std::uint64_t capacity_bytes,
                                     maf::Scheme scheme, unsigned p,
                                     unsigned q, unsigned read_ports = 1,
                                     unsigned data_width_bits = 64);

  /// Throws InvalidArgument when a field combination is inconsistent.
  void validate() const;

  /// "512KB 8 lanes (2x4) ReRo 2R" — used in tables and logs.
  std::string describe() const;
};

}  // namespace polymem::core
