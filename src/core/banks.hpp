// The Memory Banks block (paper Fig. 3, M0..M7).
//
// p*q independent BRAM banks store the data. Each additional read port
// replicates all bank contents ("increasing the number of read ports
// involved duplicating data in BRAMs", Sec. IV-C): writes go to every
// replica, read port r reads replica r — so one write and `read_ports`
// reads proceed in the same cycle without sharing a physical port.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/agu.hpp"
#include "hw/bram.hpp"

namespace polymem::core {

class BankArray {
 public:
  BankArray(unsigned banks, unsigned read_ports, std::int64_t words_per_bank);

  unsigned banks() const { return banks_; }
  unsigned read_ports() const { return read_ports_; }

  /// Starts a new cycle on every physical bank (resets port accounting).
  void begin_cycle();

  /// Applies a planned write: per-bank address/data must already be in
  /// bank order (after the inverse shuffles). Writes all replicas.
  void write(std::span<const std::int64_t> per_bank_addr,
             std::span<const hw::Word> per_bank_data);

  /// Reads every bank of replica `port` at the given per-bank addresses;
  /// results are in bank order (before the read data shuffle).
  void read(unsigned port, std::span<const std::int64_t> per_bank_addr,
            std::span<hw::Word> per_bank_data);

  /// Port-concurrent read path: same data as read(), but without the
  /// per-cycle port accounting (no begin_cycle handshake, no lifetime
  /// counters). Each read port owns a disjoint bank replica, so any
  /// number of threads may call this on *distinct* ports while no write
  /// is in flight — the contract PolyMem::read_batch_mt runs under.
  void read_shared(unsigned port, std::span<const std::int64_t> per_bank_addr,
                   std::span<hw::Word> per_bank_data) const;

  /// Host backdoor (no port accounting) — used by load/offload paths.
  hw::Word peek(unsigned bank, std::int64_t addr) const;
  void poke(unsigned bank, std::int64_t addr, hw::Word value);

  /// Raw storage base of one bank replica — the compiled batch engine
  /// (core/exec_plan.hpp) builds its flat gather/scatter pointer tables
  /// from these. Stable for the array's lifetime (banks never resize).
  const hw::Word* bank_storage(unsigned port, unsigned bank) const;
  hw::Word* bank_storage(unsigned port, unsigned bank);

  /// Bulk counter credit for compiled-engine batches, which skip the
  /// per-cycle port handshake (conflict-freedom is proven per residue
  /// class at plan-build time — the read_shared contract). `per_bank`
  /// accesses are credited to every bank of read replica `port`
  /// (reads), respectively every bank of every replica (writes).
  void add_bulk_reads(unsigned port, std::uint64_t per_bank);
  void add_bulk_writes(std::uint64_t per_bank);

  std::uint64_t total_reads() const;
  std::uint64_t total_writes() const;

 private:
  hw::BramBank& replica(unsigned port, unsigned bank);
  const hw::BramBank& replica(unsigned port, unsigned bank) const;

  unsigned banks_;
  unsigned read_ports_;
  std::vector<hw::BramBank> storage_;  // [port][bank] flattened
};

}  // namespace polymem::core
