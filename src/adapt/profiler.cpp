#include "adapt/profiler.hpp"

#include "common/error.hpp"

namespace polymem::adapt {

bool run_aligned(unsigned p, unsigned q, access::Coord anchor,
                 access::Coord stride) {
  const auto sp = static_cast<std::int64_t>(p);
  const auto sq = static_cast<std::int64_t>(q);
  // Floored-safe: anchors are in-space (non-negative) in practice, but the
  // MAFs are defined for negative coordinates too, so use remainder == 0
  // which is sign-agnostic for divisibility.
  return anchor.i % sp == 0 && anchor.j % sq == 0 && stride.i % sp == 0 &&
         stride.j % sq == 0;
}

access::PatternKind WindowProfile::dominant() const {
  access::PatternKind best = access::kAllPatterns[0];
  std::int64_t best_count = -1;
  for (access::PatternKind kind : access::kAllPatterns) {
    const std::int64_t n = of(kind).total();
    if (n > best_count) {
      best = kind;
      best_count = n;
    }
  }
  return best;
}

AccessProfiler::AccessProfiler(unsigned p, unsigned q, ProfilerOptions opts)
    : p_(p), q_(q), opts_(opts) {
  POLYMEM_REQUIRE(p > 0 && q > 0, "profiler: bank geometry must be nonzero");
  POLYMEM_REQUIRE(opts_.window > 0, "profiler: window must be positive");
  POLYMEM_REQUIRE(opts_.sample_period > 0,
                  "profiler: sample_period must be positive");
}

void AccessProfiler::observe_run(bool is_write, access::PatternKind kind,
                                 access::Coord anchor, access::Coord stride,
                                 std::int64_t count) {
  if (count <= 0) return;
  observed_total_ += count;
  in_window_ += count;
  const bool sampled = run_index_++ % opts_.sample_period == 0;
  if (sampled) {
    const std::int64_t scaled = count * opts_.sample_period;
    KindCounts& k = cur_.kinds[static_cast<std::size_t>(kind)];
    (is_write ? k.writes : k.reads) += scaled;
    (is_write ? cur_.writes : cur_.reads) += scaled;
    cur_.accesses += scaled;
    if (run_aligned(p_, q_, anchor, stride)) k.aligned += scaled;
  }
  if (in_window_ >= opts_.window) seal();
}

WindowProfile AccessProfiler::take_window() {
  POLYMEM_REQUIRE(ready_, "profiler: no sealed window to take");
  ready_ = false;
  return sealed_;
}

void AccessProfiler::reset() {
  cur_ = WindowProfile{};
  sealed_ = WindowProfile{};
  ready_ = false;
  in_window_ = 0;
  run_index_ = 0;
}

void AccessProfiler::seal() {
  cur_.sequence = sealed_count_++;
  sealed_ = cur_;
  ready_ = true;
  cur_ = WindowProfile{};
  in_window_ = 0;
}

}  // namespace polymem::adapt
