// Migration policy engine (docs/ARCHITECTURE.md, "Adaptive layout
// engine"): when is another scheme worth the move?
//
// Cost model. Every scheme serves a pattern kind at one of three levels
// (maf/conflict.hpp's machine-checked oracle): kAny costs 1 parallel-access
// slot, kAligned costs 1 for aligned runs and lanes() for unaligned ones,
// kNone costs lanes() — because an unservable access falls back to p*q
// scalar bank reads, which is exactly the fallback the replay harness and
// AdaptiveMatrix execute. Summing that over a WindowProfile gives each
// scheme's projected cost for the observed mix, in units where 1.0 == one
// conflict-free parallel access.
//
// Tiebreak. Equal-cost schemes are ranked by symbolic polymorphism
// (DseExplorer::affine_coverage over the canonical affine suite), scaled
// small enough to never override a real cost difference: when the observed
// window doesn't separate two schemes, prefer the one that provably serves
// more of the affine pattern space.
//
// Decision. A migration is proposed only when (a) the best scheme beats
// the current one by at least min_improvement (hysteresis against noise),
// (b) the same winner persists for `persistence` consecutive windows
// (phase-change debounce, DReAM-style), and (c) the projected win over
// payback_windows windows clears the migration cost — one full copy of the
// matrix, i.e. 2 * cells / lanes parallel-access slots (a dump and a fill
// of every element).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "adapt/profiler.hpp"
#include "maf/conflict.hpp"
#include "maf/scheme.hpp"

namespace polymem::adapt {

struct PolicyOptions {
  /// Required fractional cost win: migrate only when
  /// best_cost <= (1 - min_improvement) * current_cost.
  double min_improvement = 0.15;
  /// Consecutive windows that must elect the same winner.
  int persistence = 2;
  /// Horizon (in windows) over which the win must amortize the copy.
  double payback_windows = 8.0;
  /// Weight of the affine-coverage tiebreak (kept far below 1 access).
  double affine_weight = 1e-3;
};

/// One scheme's rating against a window.
struct SchemeScore {
  maf::Scheme scheme = maf::Scheme::kReO;
  bool available = false;  ///< a MAF exists for this (scheme, p, q)
  double cost = 0;         ///< projected window cost in access slots
  unsigned affine_served = 0;
  unsigned affine_any = 0;
  double score = 0;  ///< cost minus the affine tiebreak; lower is better
};

class MigrationPolicy {
 public:
  /// `cells` is the matrix size (height * width), the migration-cost side
  /// of the payback test.
  MigrationPolicy(unsigned p, unsigned q, std::int64_t cells,
                  PolicyOptions opts = {});

  const PolicyOptions& options() const { return opts_; }
  unsigned lanes() const { return p_ * q_; }

  /// The support level of `kind` under `scheme` at this geometry (kNone
  /// for schemes with no MAF at this geometry).
  maf::SupportLevel support(maf::Scheme scheme,
                            access::PatternKind kind) const;

  /// Projected cost of serving `window` under `scheme`, in access slots.
  double window_cost(maf::Scheme scheme, const WindowProfile& window) const;

  /// All five schemes rated against `window`, in kAllSchemes order.
  std::vector<SchemeScore> score(const WindowProfile& window) const;

  /// One full-matrix copy, in access slots: 2 * cells / lanes.
  double migration_cost_accesses() const;

  /// Feeds one sealed window; returns the scheme to migrate to when the
  /// improvement, persistence and payback tests all pass, nullopt
  /// otherwise. Stateful (persistence streak); call from one thread.
  std::optional<maf::Scheme> decide(maf::Scheme current,
                                    const WindowProfile& window);

  /// Clears the persistence streak (e.g. after a migration or an abort).
  void reset();

 private:
  struct SchemeInfo {
    bool available = false;
    std::array<maf::SupportLevel, std::size(access::kAllPatterns)> support{};
    unsigned affine_served = 0;
    unsigned affine_any = 0;
  };

  unsigned p_, q_;
  std::int64_t cells_;
  PolicyOptions opts_;
  std::array<SchemeInfo, std::size(maf::kAllSchemes)> schemes_{};
  std::optional<maf::Scheme> candidate_;
  int streak_ = 0;
};

}  // namespace polymem::adapt
