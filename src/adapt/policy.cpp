#include "adapt/policy.hpp"

#include "common/error.hpp"
#include "dse/explorer.hpp"
#include "maf/maf.hpp"

namespace polymem::adapt {

namespace {

std::size_t scheme_index(maf::Scheme scheme) {
  return static_cast<std::size_t>(scheme);
}

}  // namespace

MigrationPolicy::MigrationPolicy(unsigned p, unsigned q, std::int64_t cells,
                                 PolicyOptions opts)
    : p_(p), q_(q), cells_(cells), opts_(opts) {
  POLYMEM_REQUIRE(p > 0 && q > 0, "policy: bank geometry must be nonzero");
  POLYMEM_REQUIRE(cells >= 0, "policy: negative cell count");
  POLYMEM_REQUIRE(opts_.min_improvement >= 0 && opts_.min_improvement < 1,
                  "policy: min_improvement must be in [0, 1)");
  POLYMEM_REQUIRE(opts_.persistence >= 1, "policy: persistence must be >= 1");
  POLYMEM_REQUIRE(opts_.payback_windows > 0,
                  "policy: payback_windows must be positive");
  for (maf::Scheme scheme : maf::kAllSchemes) {
    SchemeInfo& info = schemes_[scheme_index(scheme)];
    try {
      const maf::Maf maf(scheme, p, q);
      info.available = true;
      for (access::PatternKind kind : access::kAllPatterns) {
        info.support[static_cast<std::size_t>(kind)] =
            maf::probe_support(maf, kind);
      }
      const auto coverage = dse::DseExplorer::affine_coverage(scheme, p, q);
      info.affine_served = coverage.served;
      info.affine_any = coverage.any;
    } catch (const Unsupported&) {
      // No MAF at this geometry (e.g. a ReTr shape outside the verified
      // skewing family): the scheme simply never wins.
      info.available = false;
    }
  }
}

maf::SupportLevel MigrationPolicy::support(maf::Scheme scheme,
                                           access::PatternKind kind) const {
  const SchemeInfo& info = schemes_[scheme_index(scheme)];
  if (!info.available) return maf::SupportLevel::kNone;
  return info.support[static_cast<std::size_t>(kind)];
}

double MigrationPolicy::window_cost(maf::Scheme scheme,
                                    const WindowProfile& window) const {
  const double fallback = lanes();
  double cost = 0;
  for (access::PatternKind kind : access::kAllPatterns) {
    const KindCounts& counts = window.of(kind);
    const std::int64_t total = counts.total();
    if (total == 0) continue;
    switch (support(scheme, kind)) {
      case maf::SupportLevel::kAny:
        cost += static_cast<double>(total);
        break;
      case maf::SupportLevel::kAligned:
        cost += static_cast<double>(counts.aligned) +
                static_cast<double>(total - counts.aligned) * fallback;
        break;
      case maf::SupportLevel::kNone:
        cost += static_cast<double>(total) * fallback;
        break;
    }
  }
  return cost;
}

std::vector<SchemeScore> MigrationPolicy::score(
    const WindowProfile& window) const {
  std::vector<SchemeScore> out;
  out.reserve(std::size(maf::kAllSchemes));
  for (maf::Scheme scheme : maf::kAllSchemes) {
    const SchemeInfo& info = schemes_[scheme_index(scheme)];
    SchemeScore entry;
    entry.scheme = scheme;
    entry.available = info.available;
    if (info.available) {
      entry.cost = window_cost(scheme, window);
      entry.affine_served = info.affine_served;
      entry.affine_any = info.affine_any;
      entry.score = entry.cost - opts_.affine_weight *
                                     (info.affine_served + info.affine_any);
    }
    out.push_back(entry);
  }
  return out;
}

double MigrationPolicy::migration_cost_accesses() const {
  return 2.0 * static_cast<double>(cells_) / static_cast<double>(lanes());
}

std::optional<maf::Scheme> MigrationPolicy::decide(
    maf::Scheme current, const WindowProfile& window) {
  if (window.accesses == 0) return std::nullopt;
  const std::vector<SchemeScore> scores = score(window);

  const SchemeScore* best = nullptr;
  for (const SchemeScore& entry : scores) {
    if (!entry.available) continue;
    if (best == nullptr || entry.score < best->score) best = &entry;
  }
  if (best == nullptr || best->scheme == current) {
    candidate_.reset();
    streak_ = 0;
    return std::nullopt;
  }

  const double current_cost = window_cost(current, window);
  const double gain = current_cost - best->cost;
  const bool improves =
      best->cost <= (1.0 - opts_.min_improvement) * current_cost && gain > 0;
  if (!improves || gain * opts_.payback_windows <= migration_cost_accesses()) {
    candidate_.reset();
    streak_ = 0;
    return std::nullopt;
  }

  if (candidate_ != best->scheme) {
    candidate_ = best->scheme;
    streak_ = 1;
  } else {
    ++streak_;
  }
  if (streak_ < opts_.persistence) return std::nullopt;
  reset();
  return best->scheme;
}

void MigrationPolicy::reset() {
  candidate_.reset();
  streak_ = 0;
}

}  // namespace polymem::adapt
