// AdaptiveMatrix — an epoch-aware PolyMem handle with live scheme
// migration (ROADMAP item 3; docs/ARCHITECTURE.md, "Adaptive layout
// engine").
//
// A PolyMem is born on one scheme and dies on it. AdaptiveMatrix wraps one
// and turns the paper's polymorphism into a runtime knob: an online
// profiler (adapt/profiler.hpp) watches the access stream, a policy engine
// (adapt/policy.hpp) elects a better scheme when the pattern mix shifts,
// and a background *copy-forward epoch migration* re-maps the data without
// ever blocking readers for the duration of the copy.
//
// Copy-forward epoch protocol
// ---------------------------
// The address space is cut into row bands (band_rows rows each, default p).
// During a migration two PolyMems exist: the active epoch A and the target
// epoch B. Three locks arbitrate:
//
//  - flip_mutex_ (shared): every client op holds it shared; the cutover
//    holds it unique. The critical section of the cutover is O(1) — swap
//    the active pointer, bump the epoch — so "readers never block" means:
//    never for the duration of the copy, only for a pointer swap.
//  - engine_mutex_: serializes client ops on the active PolyMem (its
//    batched engines share scratch state and are not concurrently
//    callable). The background copier does NOT take it — it uses only the
//    counter-free dump/fill backdoors, which never touch engine scratch.
//  - one shared_mutex per band: client *writes* take the spanned bands
//    exclusive; the copier and the verifier take one band shared at a
//    time. Client reads take no band lock at all (the copier never writes
//    epoch A).
//
// The copier walks the bands in order: under the band's shared lock it
// dump_rects the band from A, fill_rects it into B, then sets the band's
// atomic copied flag *before* releasing the lock. A client write that
// lands in a band with the flag set forwards its words to B as well
// (write-through to the future epoch); one that lands in an uncopied band
// writes A only — the copier will pick the value up when it reaches the
// band. Once every band is copied, forwarding keeps A and B identical, so
// the differential oracle can verify bit-identity band by band (again
// under shared band locks, which exclude exactly the writers), and the
// cutover is a single epoch flip. On divergence, abort request, or an
// injected fault, epoch B is discarded and A remains authoritative — a
// migration is invisible until its flip.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "adapt/policy.hpp"
#include "adapt/profiler.hpp"
#include "core/polymem.hpp"

namespace polymem::runtime {
class ThreadPool;
}

namespace polymem::adapt {

struct AdaptiveOptions {
  ProfilerOptions profiler;
  PolicyOptions policy;
  /// Profile + decide on every batch op. Off: a static matrix that still
  /// supports explicit migrate_to() (the benches time static schemes
  /// through the same serve path this way).
  bool adapt = true;
  /// Run the differential oracle over every band before cutover; a
  /// mismatch aborts the migration instead of flipping.
  bool verify_migrations = true;
  /// Rows per migration band; 0 picks p (the minimum granularity).
  std::int64_t band_rows = 0;
  /// Background copier host. nullptr: migrations run inline on the
  /// triggering thread — fully deterministic, the replay harness's mode.
  runtime::ThreadPool* pool = nullptr;
};

struct MigrationRecord {
  maf::Scheme from = maf::Scheme::kReO;
  maf::Scheme to = maf::Scheme::kReO;
  std::uint64_t epoch = 0;  ///< epoch after the flip (unchanged if aborted)
  bool aborted = false;
};

struct AdaptiveStats {
  std::uint64_t reads = 0;    ///< client parallel read accesses
  std::uint64_t writes = 0;   ///< client parallel write accesses
  std::uint64_t batched_accesses = 0;   ///< served by the compiled engine
  std::uint64_t fallback_accesses = 0;  ///< served element-wise (p*q loads)
  std::uint64_t forwarded_words = 0;    ///< write-through words to epoch B
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t migrations_aborted = 0;
  std::uint64_t verified_words = 0;
  std::uint64_t mismatched_words = 0;  ///< differential oracle failures
  std::uint64_t windows_profiled = 0;
  std::uint64_t epoch = 0;
  maf::Scheme scheme = maf::Scheme::kReO;
  std::vector<MigrationRecord> history;
};

class AdaptiveMatrix {
 public:
  explicit AdaptiveMatrix(core::PolyMemConfig config, AdaptiveOptions opts = {});
  ~AdaptiveMatrix();

  AdaptiveMatrix(const AdaptiveMatrix&) = delete;
  AdaptiveMatrix& operator=(const AdaptiveMatrix&) = delete;

  /// The construction-time configuration (scheme field = initial scheme).
  const core::PolyMemConfig& base_config() const { return base_config_; }
  unsigned lanes() const { return base_config_.lanes(); }
  std::int64_t height() const { return base_config_.height; }
  std::int64_t width() const { return base_config_.width; }
  std::int64_t bands() const { return n_bands_; }
  std::int64_t band_rows() const { return band_rows_; }

  /// Current scheme / epoch (epoch increments once per completed flip).
  maf::Scheme scheme() const;
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  // ---- client operations (thread-safe, serialized internally) ----------

  /// Batched read/write through the active epoch: batches the current
  /// scheme serves conflict-free go through the compiled engine, the rest
  /// fall back to p*q scalar bank accesses per element — the honest cost
  /// of a mismatched layout, and exactly what the policy's cost model
  /// charges. out/data hold count() * lanes() words in canonical order.
  void read_batch(const core::AccessBatch& batch, std::span<core::Word> out);
  void write_batch(const core::AccessBatch& batch,
                   std::span<const core::Word> data);

  /// Scalar host backdoor (migration-safe: store forwards to epoch B).
  core::Word load(access::Coord c) const;
  void store(access::Coord c, core::Word value);

  /// Bulk host helpers (row-major rectangle), migration-safe.
  void fill_rect(access::Coord origin, std::int64_t rows, std::int64_t cols,
                 std::span<const core::Word> values);
  void dump_rect(access::Coord origin, std::int64_t rows, std::int64_t cols,
                 std::span<core::Word> values) const;

  /// True when the active scheme serves this run conflict-free (the
  /// batched path will be taken).
  bool run_supported(const core::AccessBatch& batch) const;

  // ---- migration control -----------------------------------------------

  /// Starts a migration to `target`. Returns false when target is the
  /// active scheme, a migration is already running, or no MAF exists for
  /// the geometry. With a pool the copy runs in the background; without
  /// one this call returns after the flip (or abort).
  bool migrate_to(maf::Scheme target);

  bool migration_in_progress() const {
    return migrating_.load(std::memory_order_acquire);
  }

  /// Blocks until no migration is running.
  void wait_idle();

  /// Requests the running migration (if any) abort, and waits. The
  /// active epoch is untouched; the partial target epoch is discarded.
  void abort_migration();

  /// Test hook: the copier aborts (as if crashed) when it reaches this
  /// band index. Cleared after it fires or the migration ends.
  void set_fault_band(std::int64_t band) {
    fault_band_.store(band, std::memory_order_relaxed);
  }

  AdaptiveStats stats() const;

 private:
  std::int64_t band_of(std::int64_t row) const { return row / band_rows_; }
  std::int64_t band_first_row(std::int64_t band) const {
    return band * band_rows_;
  }
  std::int64_t band_row_count(std::int64_t band) const;

  /// Row span [min_row, max_row] touched by the batch (pattern extent
  /// included), clamped to the address space.
  void batch_row_span(const core::AccessBatch& batch, std::int64_t& lo,
                      std::int64_t& hi) const;

  bool run_supported_locked(const core::AccessBatch& batch) const;
  void serve_read(const core::AccessBatch& batch, std::span<core::Word> out);
  void serve_write(const core::AccessBatch& batch,
                   std::span<const core::Word> data);
  /// Re-applies the batch's words to epoch B for every copied band
  /// (caller holds the spanned band locks exclusive).
  void forward_write(const core::AccessBatch& batch,
                     std::span<const core::Word> data);
  void forward_store(access::Coord c, core::Word value);

  /// Profile the run and ask the policy; returns a migration target to
  /// start after the locks drop. Caller holds engine_mutex_.
  std::optional<maf::Scheme> observe(bool is_write,
                                     const core::AccessBatch& batch);

  void run_migration(maf::Scheme target);

  core::PolyMemConfig base_config_;
  AdaptiveOptions opts_;
  std::int64_t band_rows_ = 0;
  std::int64_t n_bands_ = 0;

  /// Client-side entry: shared flip lock, yielding first while a cutover
  /// is waiting so the O(1) flip is never starved by back-to-back ops
  /// (pthread rwlocks prefer readers by default).
  std::shared_lock<std::shared_mutex> enter() const;

  // Epoch state: active_/next_/current_scheme_ change only under
  // flip_mutex_ unique; client ops hold it shared.
  mutable std::shared_mutex flip_mutex_;
  std::atomic<bool> flip_waiting_{false};
  std::unique_ptr<core::PolyMem> active_;
  std::unique_ptr<core::PolyMem> next_;
  maf::Scheme current_scheme_;
  std::atomic<std::uint64_t> epoch_{0};

  // Client-op serialization (PolyMem engine scratch is shared state).
  mutable std::mutex engine_mutex_;
  mutable std::vector<access::Coord> expand_scratch_;  // fallback path

  // Per-band writer-vs-copier arbitration + copy progress.
  std::vector<std::unique_ptr<std::shared_mutex>> band_locks_;
  std::unique_ptr<std::atomic<bool>[]> copied_;
  std::atomic<bool> migrating_{false};
  std::atomic<bool> abort_requested_{false};
  std::atomic<std::int64_t> fault_band_{-1};

  // Migration lifecycle: admission + completion signalling.
  std::mutex admit_mutex_;
  mutable std::mutex done_mutex_;
  mutable std::condition_variable done_cv_;
  bool busy_ = false;

  // Profiling + policy (engine_mutex_).
  AccessProfiler profiler_;
  MigrationPolicy policy_;

  // Stats. Client-op counters live under engine_mutex_; migration-side
  // counters are atomics (the copier doesn't hold the engine lock).
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t batched_accesses_ = 0;
  std::uint64_t fallback_accesses_ = 0;
  std::uint64_t forwarded_words_ = 0;
  std::uint64_t windows_profiled_ = 0;
  std::atomic<std::uint64_t> migrations_started_{0};
  std::atomic<std::uint64_t> migrations_completed_{0};
  std::atomic<std::uint64_t> migrations_aborted_{0};
  std::atomic<std::uint64_t> verified_words_{0};
  std::atomic<std::uint64_t> mismatched_words_{0};
  mutable std::mutex history_mutex_;
  std::vector<MigrationRecord> history_;
};

}  // namespace polymem::adapt
