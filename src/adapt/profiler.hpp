// Online access-stream profiler (docs/ARCHITECTURE.md, "Adaptive layout
// engine"; ROADMAP item 3, after DReAM's dynamic re-arrangement).
//
// The adaptive engine needs to know, cheaply and continuously, what the
// workload is *doing*: which Table-I patterns dominate, how many of them
// land on p/q-aligned anchors, and how the mix shifts over time. This is
// exactly the provenance the AccessTrace already carries per access
// (pattern kind + anchor), so the profiler consumes the same stream —
// either directly from AdaptiveMatrix's serve path, or from any
// sched::TraceRecorder via the ProfilingObserver adapter.
//
// Accesses accumulate into fixed-size *windows* (ProfilerOptions::window
// parallel accesses each). When a window fills it is sealed into a
// WindowProfile histogram and the accumulator restarts; the policy engine
// (adapt/policy.hpp) consumes sealed windows one at a time. Sampling
// (sample_period > 1) records every Nth run scaled by the period, so the
// histogram stays an unbiased estimate while the observe cost drops
// proportionally.
//
// Alignment is classified with the same rule the batched execution engine
// uses for kAligned schemes: a run is aligned when its first anchor *and*
// its stride are p/q-aligned — then every access of the run is. This keeps
// the profiler's "aligned" column in one-to-one correspondence with what
// read_batch/write_batch could actually serve conflict-free.
#pragma once

#include <array>
#include <cstdint>

#include "access/pattern.hpp"
#include "sched/trace_io.hpp"

namespace polymem::adapt {

struct ProfilerOptions {
  /// Parallel accesses per sealed window.
  std::int64_t window = 4096;
  /// Record every Nth run (counts scaled by N); 1 = exact.
  std::int64_t sample_period = 1;
};

/// True when a constant-stride run starting at `anchor` keeps every access
/// p/q-aligned — the eligibility rule of the batched engines for kAligned
/// schemes.
bool run_aligned(unsigned p, unsigned q, access::Coord anchor,
                 access::Coord stride);

/// Per-pattern-kind counters of one window.
struct KindCounts {
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  std::int64_t aligned = 0;  ///< of total(), how many in aligned runs

  std::int64_t total() const { return reads + writes; }
};

/// One sealed histogram window.
struct WindowProfile {
  std::array<KindCounts, std::size(access::kAllPatterns)> kinds{};
  std::int64_t accesses = 0;  ///< observed accesses (sampling-scaled)
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  std::int64_t sequence = 0;  ///< 0-based seal index

  const KindCounts& of(access::PatternKind kind) const {
    return kinds[static_cast<std::size_t>(kind)];
  }
  /// The kind with the most accesses in this window (ties: first in
  /// kAllPatterns order). Meaningless when accesses == 0.
  access::PatternKind dominant() const;
};

/// Windowed histogram accumulator. Not thread-safe: the owner serializes
/// observe calls (AdaptiveMatrix holds its engine lock; a TraceRecorder is
/// single-threaded by contract).
class AccessProfiler {
 public:
  AccessProfiler(unsigned p, unsigned q, ProfilerOptions opts = {});

  const ProfilerOptions& options() const { return opts_; }

  /// Observes one constant-stride run of `count` accesses.
  void observe_run(bool is_write, access::PatternKind kind,
                   access::Coord anchor, access::Coord stride,
                   std::int64_t count);

  /// Observes one access (a run of length 1).
  void observe(bool is_write, const access::ParallelAccess& access) {
    observe_run(is_write, access.kind, access.anchor, {0, 0}, 1);
  }

  /// True when a sealed window is waiting to be taken. If several windows
  /// seal before take_window(), the latest wins — the adaptive loop wants
  /// the freshest view, not a backlog.
  bool window_ready() const { return ready_; }
  WindowProfile take_window();

  std::int64_t windows_sealed() const { return sealed_count_; }
  std::int64_t accesses_observed() const { return observed_total_; }

  /// Drops the partial window and the pending sealed one.
  void reset();

 private:
  void seal();

  unsigned p_, q_;
  ProfilerOptions opts_;
  WindowProfile cur_;
  WindowProfile sealed_;
  bool ready_ = false;
  std::int64_t in_window_ = 0;  ///< unscaled accesses since last seal
  std::int64_t sealed_count_ = 0;
  std::int64_t observed_total_ = 0;
  std::int64_t run_index_ = 0;
};

/// sched::AccessObserver adapter: tees every access a TraceRecorder sees
/// into a profiler — the sampling hook of ROADMAP item 3 ("an observer
/// that samples the AccessTrace").
class ProfilingObserver final : public sched::AccessObserver {
 public:
  explicit ProfilingObserver(AccessProfiler& profiler) : profiler_(&profiler) {}

  void on_access(sched::TraceOp::Dir dir,
                 const access::ParallelAccess& access) override {
    profiler_->observe(dir == sched::TraceOp::Dir::kWrite, access);
  }

 private:
  AccessProfiler* profiler_;
};

}  // namespace polymem::adapt
