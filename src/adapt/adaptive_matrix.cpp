#include "adapt/adaptive_matrix.hpp"

#include <algorithm>
#include <thread>

#include "common/error.hpp"
#include "runtime/thread_pool.hpp"

namespace polymem::adapt {

namespace {

bool stride_aligned(std::int64_t p, std::int64_t q, access::Coord stride) {
  return stride.i % p == 0 && stride.j % q == 0;
}

}  // namespace

AdaptiveMatrix::AdaptiveMatrix(core::PolyMemConfig config, AdaptiveOptions opts)
    : base_config_(config),
      opts_(opts),
      band_rows_(opts.band_rows > 0 ? opts.band_rows : config.p),
      n_bands_((config.height + band_rows_ - 1) / band_rows_),
      active_(std::make_unique<core::PolyMem>(config)),
      current_scheme_(config.scheme),
      profiler_(config.p, config.q, opts.profiler),
      policy_(config.p, config.q, config.height * config.width, opts.policy) {
  POLYMEM_REQUIRE(n_bands_ > 0, "adaptive: empty address space");
  band_locks_.reserve(static_cast<std::size_t>(n_bands_));
  for (std::int64_t b = 0; b < n_bands_; ++b) {
    band_locks_.push_back(std::make_unique<std::shared_mutex>());
  }
  copied_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(n_bands_));
  for (std::int64_t b = 0; b < n_bands_; ++b) {
    copied_[b].store(false, std::memory_order_relaxed);
  }
}

AdaptiveMatrix::~AdaptiveMatrix() { abort_migration(); }

std::shared_lock<std::shared_mutex> AdaptiveMatrix::enter() const {
  while (flip_waiting_.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  return std::shared_lock(flip_mutex_);
}

maf::Scheme AdaptiveMatrix::scheme() const {
  std::shared_lock flip = enter();
  return current_scheme_;
}

std::int64_t AdaptiveMatrix::band_row_count(std::int64_t band) const {
  return std::min(band_rows_, height() - band_first_row(band));
}

void AdaptiveMatrix::batch_row_span(const core::AccessBatch& batch,
                                    std::int64_t& lo, std::int64_t& hi) const {
  const auto ext =
      access::pattern_extent(batch.kind, base_config_.p, base_config_.q);
  const std::int64_t outer = batch.outer_stride.i * (batch.outer_count - 1);
  const std::int64_t inner = batch.inner_stride.i * (batch.inner_count - 1);
  std::int64_t min_i = batch.start.i + std::min<std::int64_t>(0, outer) +
                       std::min<std::int64_t>(0, inner);
  std::int64_t max_i = batch.start.i + std::max<std::int64_t>(0, outer) +
                       std::max<std::int64_t>(0, inner) + ext.rows - 1;
  lo = std::clamp<std::int64_t>(min_i, 0, height() - 1);
  hi = std::clamp<std::int64_t>(max_i, lo, height() - 1);
}

bool AdaptiveMatrix::run_supported_locked(
    const core::AccessBatch& batch) const {
  switch (active_->supports(batch.kind)) {
    case maf::SupportLevel::kAny:
      return true;
    case maf::SupportLevel::kAligned:
      return run_aligned(base_config_.p, base_config_.q, batch.start,
                         batch.inner_stride) &&
             stride_aligned(base_config_.p, base_config_.q,
                            batch.outer_stride);
    case maf::SupportLevel::kNone:
      return false;
  }
  return false;
}

bool AdaptiveMatrix::run_supported(const core::AccessBatch& batch) const {
  std::shared_lock flip = enter();
  std::lock_guard eng(engine_mutex_);
  return run_supported_locked(batch);
}

void AdaptiveMatrix::serve_read(const core::AccessBatch& batch,
                                std::span<core::Word> out) {
  const std::int64_t count = batch.count();
  if (run_supported_locked(batch)) {
    active_->read_batch(batch, 0, out);
    batched_accesses_ += static_cast<std::uint64_t>(count);
    return;
  }
  const unsigned lane_count = lanes();
  for (std::int64_t t = 0; t < count; ++t) {
    access::expand_into(batch.access(t), base_config_.p, base_config_.q,
                        expand_scratch_);
    for (unsigned l = 0; l < lane_count; ++l) {
      out[static_cast<std::size_t>(t) * lane_count + l] =
          active_->load(expand_scratch_[l]);
    }
  }
  fallback_accesses_ += static_cast<std::uint64_t>(count);
}

void AdaptiveMatrix::serve_write(const core::AccessBatch& batch,
                                 std::span<const core::Word> data) {
  const std::int64_t count = batch.count();
  if (run_supported_locked(batch)) {
    active_->write_batch(batch, data);
    batched_accesses_ += static_cast<std::uint64_t>(count);
    return;
  }
  const unsigned lane_count = lanes();
  for (std::int64_t t = 0; t < count; ++t) {
    access::expand_into(batch.access(t), base_config_.p, base_config_.q,
                        expand_scratch_);
    for (unsigned l = 0; l < lane_count; ++l) {
      active_->store(expand_scratch_[l],
                     data[static_cast<std::size_t>(t) * lane_count + l]);
    }
  }
  fallback_accesses_ += static_cast<std::uint64_t>(count);
}

void AdaptiveMatrix::forward_write(const core::AccessBatch& batch,
                                   std::span<const core::Word> data) {
  const unsigned lane_count = lanes();
  const std::int64_t count = batch.count();
  for (std::int64_t t = 0; t < count; ++t) {
    access::expand_into(batch.access(t), base_config_.p, base_config_.q,
                        expand_scratch_);
    for (unsigned l = 0; l < lane_count; ++l) {
      const access::Coord c = expand_scratch_[l];
      if (copied_[band_of(c.i)].load(std::memory_order_acquire)) {
        next_->store(c, data[static_cast<std::size_t>(t) * lane_count + l]);
        ++forwarded_words_;
      }
    }
  }
}

void AdaptiveMatrix::forward_store(access::Coord c, core::Word value) {
  if (copied_[band_of(c.i)].load(std::memory_order_acquire)) {
    next_->store(c, value);
    ++forwarded_words_;
  }
}

std::optional<maf::Scheme> AdaptiveMatrix::observe(
    bool is_write, const core::AccessBatch& batch) {
  for (std::int64_t o = 0; o < batch.outer_count; ++o) {
    const access::Coord anchor{batch.start.i + o * batch.outer_stride.i,
                               batch.start.j + o * batch.outer_stride.j};
    profiler_.observe_run(is_write, batch.kind, anchor, batch.inner_stride,
                          batch.inner_count);
  }
  if (!profiler_.window_ready()) return std::nullopt;
  ++windows_profiled_;
  const WindowProfile window = profiler_.take_window();
  return policy_.decide(current_scheme_, window);
}

void AdaptiveMatrix::read_batch(const core::AccessBatch& batch,
                                std::span<core::Word> out) {
  POLYMEM_REQUIRE(
      out.size() == static_cast<std::size_t>(batch.count()) * lanes(),
      "adaptive read_batch: out must hold count() * lanes() words");
  std::optional<maf::Scheme> pending;
  {
    std::shared_lock flip = enter();
    std::lock_guard eng(engine_mutex_);
    serve_read(batch, out);
    reads_ += static_cast<std::uint64_t>(batch.count());
    if (opts_.adapt) pending = observe(false, batch);
  }
  if (pending) migrate_to(*pending);
}

void AdaptiveMatrix::write_batch(const core::AccessBatch& batch,
                                 std::span<const core::Word> data) {
  POLYMEM_REQUIRE(
      data.size() == static_cast<std::size_t>(batch.count()) * lanes(),
      "adaptive write_batch: data must hold count() * lanes() words");
  std::optional<maf::Scheme> pending;
  {
    std::shared_lock flip = enter();
    std::lock_guard eng(engine_mutex_);
    if (migrating_.load(std::memory_order_acquire)) {
      std::int64_t lo = 0, hi = 0;
      batch_row_span(batch, lo, hi);
      std::vector<std::unique_lock<std::shared_mutex>> held;
      held.reserve(static_cast<std::size_t>(band_of(hi) - band_of(lo) + 1));
      for (std::int64_t b = band_of(lo); b <= band_of(hi); ++b) {
        held.emplace_back(*band_locks_[static_cast<std::size_t>(b)]);
      }
      serve_write(batch, data);
      forward_write(batch, data);
    } else {
      serve_write(batch, data);
    }
    writes_ += static_cast<std::uint64_t>(batch.count());
    if (opts_.adapt) pending = observe(true, batch);
  }
  if (pending) migrate_to(*pending);
}

core::Word AdaptiveMatrix::load(access::Coord c) const {
  std::shared_lock flip = enter();
  std::lock_guard eng(engine_mutex_);
  return active_->load(c);
}

void AdaptiveMatrix::store(access::Coord c, core::Word value) {
  std::shared_lock flip = enter();
  std::lock_guard eng(engine_mutex_);
  if (migrating_.load(std::memory_order_acquire)) {
    const std::int64_t b =
        std::clamp<std::int64_t>(band_of(c.i), 0, n_bands_ - 1);
    std::unique_lock band(*band_locks_[static_cast<std::size_t>(b)]);
    active_->store(c, value);
    forward_store(c, value);
  } else {
    active_->store(c, value);
  }
}

void AdaptiveMatrix::fill_rect(access::Coord origin, std::int64_t rows,
                               std::int64_t cols,
                               std::span<const core::Word> values) {
  std::shared_lock flip = enter();
  std::lock_guard eng(engine_mutex_);
  if (!migrating_.load(std::memory_order_acquire)) {
    active_->fill_rect(origin, rows, cols, values);
    return;
  }
  const std::int64_t lo = std::clamp<std::int64_t>(origin.i, 0, height() - 1);
  const std::int64_t hi =
      std::clamp<std::int64_t>(origin.i + rows - 1, lo, height() - 1);
  std::vector<std::unique_lock<std::shared_mutex>> held;
  held.reserve(static_cast<std::size_t>(band_of(hi) - band_of(lo) + 1));
  for (std::int64_t b = band_of(lo); b <= band_of(hi); ++b) {
    held.emplace_back(*band_locks_[static_cast<std::size_t>(b)]);
  }
  active_->fill_rect(origin, rows, cols, values);
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      forward_store({origin.i + r, origin.j + c},
                    values[static_cast<std::size_t>(r * cols + c)]);
    }
  }
}

void AdaptiveMatrix::dump_rect(access::Coord origin, std::int64_t rows,
                               std::int64_t cols,
                               std::span<core::Word> values) const {
  std::shared_lock flip = enter();
  std::lock_guard eng(engine_mutex_);
  active_->dump_rect(origin, rows, cols, values);
}

bool AdaptiveMatrix::migrate_to(maf::Scheme target) {
  std::lock_guard admit(admit_mutex_);
  {
    std::lock_guard done(done_mutex_);
    if (busy_) return false;
  }
  {
    std::shared_lock flip = enter();
    if (current_scheme_ == target) return false;
  }
  std::unique_ptr<core::PolyMem> fresh;
  try {
    fresh = std::make_unique<core::PolyMem>(base_config_.with_scheme(target));
  } catch (const Unsupported&) {
    return false;  // no MAF for this (scheme, p, q)
  }
  for (std::int64_t b = 0; b < n_bands_; ++b) {
    copied_[b].store(false, std::memory_order_relaxed);
  }
  abort_requested_.store(false, std::memory_order_relaxed);
  next_ = std::move(fresh);
  migrations_started_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard done(done_mutex_);
    busy_ = true;
  }
  // Publishes next_ and the cleared copy map to forwarding writers.
  migrating_.store(true, std::memory_order_release);
  if (opts_.pool != nullptr) {
    opts_.pool->submit([this, target] { run_migration(target); });
  } else {
    run_migration(target);
  }
  return true;
}

void AdaptiveMatrix::run_migration(maf::Scheme target) {
  bool aborted = false;
  const std::int64_t w = width();
  std::vector<core::Word> image(static_cast<std::size_t>(band_rows_ * w));

  // Copy phase: band by band under the band's shared lock (excludes
  // client writers to the band; readers are unaffected).
  for (std::int64_t b = 0; b < n_bands_; ++b) {
    if (abort_requested_.load(std::memory_order_relaxed) ||
        fault_band_.load(std::memory_order_relaxed) == b) {
      aborted = true;
      break;
    }
    std::shared_lock band(*band_locks_[static_cast<std::size_t>(b)]);
    const std::int64_t rows = band_row_count(b);
    const std::span<core::Word> view(image.data(),
                                     static_cast<std::size_t>(rows * w));
    active_->dump_rect({band_first_row(b), 0}, rows, w, view);
    next_->fill_rect({band_first_row(b), 0}, rows, w, view);
    // Release before unlocking: a writer that takes this band exclusive
    // afterwards must see the flag and forward.
    copied_[b].store(true, std::memory_order_release);
  }

  // Differential oracle: with every band copied and forwarding active,
  // A and B must be bit-identical; any difference is a protocol bug and
  // vetoes the flip.
  if (!aborted && opts_.verify_migrations) {
    std::uint64_t mismatches = 0;
    std::vector<core::Word> other(image.size());
    for (std::int64_t b = 0; b < n_bands_; ++b) {
      if (abort_requested_.load(std::memory_order_relaxed)) {
        aborted = true;
        break;
      }
      std::shared_lock band(*band_locks_[static_cast<std::size_t>(b)]);
      const std::int64_t rows = band_row_count(b);
      const auto n = static_cast<std::size_t>(rows * w);
      const std::span<core::Word> a_view(image.data(), n);
      const std::span<core::Word> b_view(other.data(), n);
      active_->dump_rect({band_first_row(b), 0}, rows, w, a_view);
      next_->dump_rect({band_first_row(b), 0}, rows, w, b_view);
      for (std::size_t k = 0; k < n; ++k) {
        if (a_view[k] != b_view[k]) ++mismatches;
      }
      verified_words_.fetch_add(n, std::memory_order_relaxed);
    }
    if (mismatches > 0) {
      mismatched_words_.fetch_add(mismatches, std::memory_order_relaxed);
      aborted = true;
    }
  }

  // Cutover (or rollback): the only exclusive hold on flip_mutex_, O(1).
  std::unique_ptr<core::PolyMem> retired;
  maf::Scheme from = maf::Scheme::kReO;
  std::uint64_t epoch_after = 0;
  {
    flip_waiting_.store(true, std::memory_order_release);
    std::unique_lock flip(flip_mutex_);
    flip_waiting_.store(false, std::memory_order_release);
    from = current_scheme_;
    migrating_.store(false, std::memory_order_release);
    if (aborted) {
      retired = std::move(next_);
      epoch_after = epoch_.load(std::memory_order_relaxed);
    } else {
      retired = std::move(active_);
      active_ = std::move(next_);
      current_scheme_ = target;
      epoch_after = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
    }
  }
  if (aborted) {
    migrations_aborted_.fetch_add(1, std::memory_order_relaxed);
  } else {
    migrations_completed_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard hist(history_mutex_);
    history_.push_back({from, target, epoch_after, aborted});
  }
  fault_band_.store(-1, std::memory_order_relaxed);
  retired.reset();  // destroy the losing epoch outside every lock
  {
    std::lock_guard done(done_mutex_);
    busy_ = false;
  }
  done_cv_.notify_all();
}

void AdaptiveMatrix::wait_idle() {
  std::unique_lock done(done_mutex_);
  done_cv_.wait(done, [this] { return !busy_; });
}

void AdaptiveMatrix::abort_migration() {
  abort_requested_.store(true, std::memory_order_relaxed);
  wait_idle();
  abort_requested_.store(false, std::memory_order_relaxed);
}

AdaptiveStats AdaptiveMatrix::stats() const {
  AdaptiveStats s;
  {
    std::lock_guard eng(engine_mutex_);
    s.reads = reads_;
    s.writes = writes_;
    s.batched_accesses = batched_accesses_;
    s.fallback_accesses = fallback_accesses_;
    s.forwarded_words = forwarded_words_;
    s.windows_profiled = windows_profiled_;
  }
  s.migrations_started = migrations_started_.load(std::memory_order_relaxed);
  s.migrations_completed =
      migrations_completed_.load(std::memory_order_relaxed);
  s.migrations_aborted = migrations_aborted_.load(std::memory_order_relaxed);
  s.verified_words = verified_words_.load(std::memory_order_relaxed);
  s.mismatched_words = mismatched_words_.load(std::memory_order_relaxed);
  s.epoch = epoch_.load(std::memory_order_acquire);
  {
    std::shared_lock flip = enter();
    s.scheme = current_scheme_;
  }
  {
    std::lock_guard hist(history_mutex_);
    s.history = history_;
  }
  return s;
}

}  // namespace polymem::adapt
