// End-to-end STREAM on the simulated Maxeler DFE (paper Sec. V, Fig. 9).
//
// Runs the paper's three-stage flow — Load over PCIe, compute kernels on
// the DFE, Offload over PCIe — on the full-size design (three vectors of
// 170*512 doubles, 8 lanes, RoCo, 120 MHz, 14-cycle read latency), then
// prints the classic STREAM report and the comparison against the
// theoretical 15360 MB/s peak.
#include <cstdio>
#include <iostream>
#include <vector>

#include "stream/host.hpp"

using namespace polymem;
using stream::Mode;

int main() {
  stream::StreamHost host;  // paper-defaults design
  const std::int64_t n = host.design().config().vector_capacity;
  std::printf("STREAM on MAX-PolyMem: vectors of %lld doubles (%.0f KB each)\n",
              static_cast<long long>(n), n * 8.0 / 1024);

  // Host-side STREAM initialisation: a = 1.0, b = 2.0, c = 0.0.
  std::vector<double> a(static_cast<std::size_t>(n), 1.0);
  std::vector<double> b(static_cast<std::size_t>(n), 2.0);
  std::vector<double> c(static_cast<std::size_t>(n), 0.0);
  host.load(a, b, c);

  // The four STREAM kernels, 10 repetitions each (the paper uses 1000 to
  // beat the host timer; the simulated clock is exact, so fewer suffice).
  const double q = 3.0;
  std::vector<stream::StreamResult> results;
  results.push_back(host.run(Mode::kCopy, n, 10));
  results.push_back(host.run(Mode::kScale, n, 10, q));
  results.push_back(host.run(Mode::kSum, n, 10));
  results.push_back(host.run(Mode::kTriad, n, 10, q));

  std::cout << stream::StreamHost::report(results);

  // Verify against the STREAM reference computation on the host.
  std::vector<double> a2(a.size()), b2(b.size()), c2(c.size());
  host.offload(a2, b2, c2);
  double ar = 1.0, br = 2.0, cr = 0.0;
  cr = ar;            // Copy
  ar = q * br;        // Scale
  ar = br + cr;       // Sum
  ar = br + q * cr;   // Triad
  std::uint64_t errors = 0;
  for (std::size_t k = 0; k < a2.size(); ++k)
    if (a2[k] != ar || b2[k] != br || c2[k] != cr) ++errors;
  std::printf("verification: %llu mismatches\n",
              static_cast<unsigned long long>(errors));

  // The paper's headline ratio for Copy.
  const auto& copy = results.front();
  const double peak = host.theoretical_peak_bytes_per_s(Mode::kCopy);
  std::printf("Copy: %.0f of %.0f MB/s theoretical peak (%.2f%%)\n",
              copy.best_rate_bytes_per_s() / 1e6, peak / 1e6,
              100.0 * copy.best_rate_bytes_per_s() / peak);
  return errors == 0 ? 0 : 1;
}
