// Walks the paper's Fig. 2: ten logical registers (matrix, transposed
// matrix, rows, columns, diagonals) in one 2D address space over 8 banks,
// each readable in one (R1..R9) or several (R0) parallel accesses —
// and shows which scheme serves which register (the Table I trade-off).
#include <cstdio>
#include <numeric>

#include "prf/fig2.hpp"
#include "prf/register_file.hpp"

using namespace polymem;

int main() {
  std::printf(
      "Fig. 2: a %lldx%lld space over 2x4 banks holding 10 regions\n\n",
      static_cast<long long>(prf::kFig2Height),
      static_cast<long long>(prf::kFig2Width));

  std::printf("%-4s %-9s %-9s %-9s %-10s %s\n", "reg", "shape", "elements",
              "pattern", "accesses", "served by");
  for (const auto& r : prf::fig2_registers()) {
    core::PolyMemConfig cfg;
    cfg.scheme = r.served_by;
    cfg.p = 2;
    cfg.q = 4;
    cfg.height = prf::kFig2Height;
    cfg.width = prf::kFig2Width;
    core::PolyMem mem(cfg);
    prf::RegisterFile rf(mem);
    rf.define(r.name, r.region, r.pattern);
    std::printf("%-4s %-9s %-9lld %-9s %-10lld %s\n", r.name.c_str(),
                access::region_shape_name(r.region.shape),
                static_cast<long long>(r.region.element_count()),
                access::pattern_name(r.pattern),
                static_cast<long long>(rf.read_access_count(r.name)),
                maf::scheme_name(r.served_by));
  }

  // The multiview demonstration: one ReRo memory hosts R0-R4, R7, R8
  // simultaneously; the data written through one shape reads back through
  // another without reconfiguration.
  std::printf("\nReRo hosts R0-R4, R7, R8 simultaneously:\n");
  core::PolyMemConfig cfg;
  cfg.scheme = maf::Scheme::kReRo;
  cfg.p = 2;
  cfg.q = 4;
  cfg.height = prf::kFig2Height;
  cfg.width = prf::kFig2Width;
  core::PolyMem mem(cfg);
  prf::RegisterFile rf(mem);
  std::uint64_t total_accesses = 0;
  std::int64_t total_elements = 0;
  for (const auto& r : prf::fig2_registers()) {
    if (r.name == "R5" || r.name == "R6" || r.name == "R9") continue;
    rf.define(r.name, r.region, r.pattern);
    std::vector<core::Word> data(
        static_cast<std::size_t>(r.region.element_count()));
    std::iota(data.begin(), data.end(), 0u);
    prf::TransferStats stats;
    rf.write_register(r.name, data, &stats);
    total_accesses += static_cast<std::uint64_t>(stats.parallel_writes);
    total_elements += stats.elements_moved;
  }
  std::printf("  wrote %lld elements in %llu parallel accesses "
              "(%.1f elements/cycle)\n",
              static_cast<long long>(total_elements),
              static_cast<unsigned long long>(total_accesses),
              static_cast<double>(total_elements) / total_accesses);

  // Runtime polymorphism: R1 grows into the space R2 occupied.
  rf.undefine("R2");
  rf.redefine("R1", access::Region::matrix({0, 8}, 2, 8),
              access::PatternKind::kRect);
  std::printf("  after redefine, R1 = 2x8 matrix, %lld accesses\n",
              static_cast<long long>(rf.read_access_count("R1")));
  return 0;
}
