// Blocked matrix transpose with the ReTr scheme.
//
// ReTr keeps BOTH the p x q rectangle and its q x p transpose
// conflict-free, so a transpose kernel reads a p x q tile and writes it
// back as a q x p tile — every cycle moving p*q elements, with no bank
// conflicts in either direction. This is the access pair no other scheme
// serves (Table I).
#include <cstdio>
#include <vector>

#include "core/polymem.hpp"

using namespace polymem;

int main() {
  constexpr std::int64_t kN = 32;  // transpose a 32x32 matrix
  // One PolyMem holds both matrices: source in rows [0, kN), transposed
  // destination in rows [kN, 2*kN).
  core::PolyMemConfig config;
  config.scheme = maf::Scheme::kReTr;
  config.p = 2;
  config.q = 4;
  config.height = 2 * kN;
  config.width = kN;
  config.validate();
  core::PolyMem mem(config);
  std::printf("Transpose %lldx%lld via %s\n", static_cast<long long>(kN),
              static_cast<long long>(kN), config.describe().c_str());

  for (std::int64_t i = 0; i < kN; ++i)
    for (std::int64_t j = 0; j < kN; ++j)
      mem.store({i, j}, static_cast<core::Word>(1000 * i + j));

  // For each 2x4 source tile: one rect read, one trect write at the
  // mirrored destination anchor. Lane permutation between the two
  // canonical orders does the in-tile transpose:
  // rect lane (u, v) -> trect lane (v, u).
  using access::PatternKind;
  std::uint64_t accesses = 0;
  for (std::int64_t bi = 0; bi < kN; bi += 2) {
    for (std::int64_t bj = 0; bj < kN; bj += 4) {
      const auto rect = mem.read({PatternKind::kRect, {bi, bj}});
      std::vector<core::Word> trect(8);
      for (int u = 0; u < 2; ++u)
        for (int v = 0; v < 4; ++v)
          trect[static_cast<std::size_t>(v * 2 + u)] =
              rect[static_cast<std::size_t>(u * 4 + v)];
      mem.write({PatternKind::kTRect, {kN + bj, bi}}, trect);
      accesses += 2;
    }
  }

  // Verify: destination element (kN + i, j) holds the original (j, i).
  std::uint64_t errors = 0;
  for (std::int64_t i = 0; i < kN; ++i)
    for (std::int64_t j = 0; j < kN; ++j)
      if (mem.load({kN + i, j}) != static_cast<core::Word>(1000 * j + i))
        ++errors;

  std::printf("  %llu parallel accesses (%.1f elements per access)\n",
              static_cast<unsigned long long>(accesses),
              2.0 * kN * kN / static_cast<double>(accesses));
  std::printf("  scalar equivalent: %lld loads + %lld stores\n",
              static_cast<long long>(kN * kN), static_cast<long long>(kN * kN));
  std::printf("  verification: %llu mismatches\n",
              static_cast<unsigned long long>(errors));
  return errors == 0 ? 0 : 1;
}
