// A 9-point stencil sweep backed by PolyMem — the scientific-computing
// workload class the paper's introduction motivates.
//
// Each output tile needs a (p+2) x (q+2) input halo. With a ReO PolyMem,
// the halo is gathered with four unaligned rectangle reads (all
// conflict-free at arbitrary anchors), instead of (p+2)*(q+2) scalar
// loads — and the example counts exactly that advantage.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/layout.hpp"
#include "core/polymem.hpp"

using namespace polymem;

namespace {

constexpr std::int64_t kN = 64;  // grid is kN x kN

double host_ref(const std::vector<double>& grid, std::int64_t i,
                std::int64_t j) {
  double sum = 0;
  for (std::int64_t di = -1; di <= 1; ++di)
    for (std::int64_t dj = -1; dj <= 1; ++dj)
      sum += grid[static_cast<std::size_t>((i + di) * kN + (j + dj))];
  return sum / 9.0;
}

}  // namespace

int main() {
  // 64x64 doubles = 32KB; ReO gives unaligned rectangles, which is all a
  // stencil gather needs.
  auto config = core::PolyMemConfig::with_capacity(
      static_cast<std::uint64_t>(kN * kN * 8), maf::Scheme::kReO, 2, 4);
  core::PolyMem mem(config);

  // Initialise the grid with a smooth function.
  std::vector<double> grid(kN * kN);
  for (std::int64_t i = 0; i < kN; ++i)
    for (std::int64_t j = 0; j < kN; ++j) {
      grid[static_cast<std::size_t>(i * kN + j)] =
          0.25 * i + 0.5 * j + 0.01 * i * j;
      mem.store({i, j}, core::pack_double(grid[static_cast<std::size_t>(
                            i * kN + j)]));
    }

  // Sweep output tiles of p x q = 2x4. The 4x6 halo around a tile is
  // fetched as four 2x4 rectangle accesses (one covers 8 of the 24 halo
  // elements; 24/8 = 3 would be the lower bound, 4 keeps the gather
  // regular: rows {top, middle-left, middle-right, bottom}).
  std::uint64_t parallel_accesses = 0;
  std::uint64_t scalar_loads_equiv = 0;
  double checksum = 0, max_err = 0;

  std::vector<double> halo(4 * 6);
  for (std::int64_t ti = 1; ti + 2 <= kN - 1; ti += 2) {
    for (std::int64_t tj = 1; tj + 4 <= kN - 1; tj += 4) {
      // Gather the (ti-1..ti+2) x (tj-1..tj+4) halo with 4 rect reads.
      const access::Coord anchors[4] = {
          {ti - 1, tj - 1}, {ti - 1, tj + 1}, {ti + 1, tj - 1},
          {ti + 1, tj + 1}};
      // Fetch into a local 4x6 tile buffer.
      for (const auto& anchor : anchors) {
        const auto words = mem.read({access::PatternKind::kRect, anchor});
        const auto coords =
            access::expand({access::PatternKind::kRect, anchor}, 2, 4);
        for (unsigned k = 0; k < words.size(); ++k) {
          const std::int64_t u = coords[k].i - (ti - 1);
          const std::int64_t v = coords[k].j - (tj - 1);
          halo[static_cast<std::size_t>(u * 6 + v)] =
              core::unpack_double(words[k]);
        }
        ++parallel_accesses;
      }
      scalar_loads_equiv += 4 * 6;

      // Compute the 2x4 output tile from the halo and check against the
      // host reference.
      for (std::int64_t u = 0; u < 2; ++u) {
        for (std::int64_t v = 0; v < 4; ++v) {
          double sum = 0;
          for (std::int64_t di = 0; di <= 2; ++di)
            for (std::int64_t dj = 0; dj <= 2; ++dj)
              sum += halo[static_cast<std::size_t>((u + di) * 6 + (v + dj))];
          const double out = sum / 9.0;
          const double ref = host_ref(grid, ti + u, tj + v);
          max_err = std::max(max_err, std::abs(out - ref));
          checksum += out;
        }
      }
    }
  }

  std::printf("9-point stencil on a %lldx%lld grid via %s\n",
              static_cast<long long>(kN), static_cast<long long>(kN),
              config.describe().c_str());
  std::printf("  parallel accesses issued : %llu\n",
              static_cast<unsigned long long>(parallel_accesses));
  std::printf("  scalar loads replaced    : %llu (%.1fx fewer cycles)\n",
              static_cast<unsigned long long>(scalar_loads_equiv),
              static_cast<double>(scalar_loads_equiv) / parallel_accesses);
  std::printf("  checksum %.3f, max |err| vs host reference = %.3g\n",
              checksum, max_err);
  return max_err < 1e-12 ? 0 : 1;
}
