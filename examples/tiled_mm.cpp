// Tiled matrix multiplication through the full Fig. 1 system: matrices in
// board DRAM (LMem), PolyMem as the on-chip parallel cache, compute
// reading rows of A and columns of B in single parallel accesses.
//
// Two application-specific PolyMems (Sec. III-A: "configured for the
// application at hand"): a ReRo memory caches A tiles (row reads), a
// ReCo memory caches B tiles (column reads). The example multiplies,
// verifies against a host reference, and reports the data-reuse win of
// caching versus touching DRAM per access.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/layout.hpp"
#include "maxsim/dma.hpp"

using namespace polymem;

namespace {

constexpr std::int64_t kN = 64;   // C = A x B, all kN x kN
constexpr std::int64_t kTile = 16;  // square tiles cached on chip

core::PolyMemConfig cache_cfg(maf::Scheme scheme) {
  core::PolyMemConfig c;
  c.scheme = scheme;
  c.p = 2;
  c.q = 4;
  c.height = kTile;
  c.width = kTile;
  return c;
}

}  // namespace

int main() {
  // Board DRAM with A at word 0, B after it, C after that.
  maxsim::LMem lmem(64 << 20);
  const maxsim::LMemMatrix A{0, kN, kN, kN};
  const maxsim::LMemMatrix B{static_cast<std::uint64_t>(kN * kN), kN, kN, kN};
  const maxsim::LMemMatrix C{static_cast<std::uint64_t>(2 * kN * kN), kN, kN,
                             kN};

  // Fill A and B.
  std::vector<double> a_host(kN * kN), b_host(kN * kN);
  {
    std::vector<hw::Word> row(kN);
    for (std::int64_t i = 0; i < kN; ++i) {
      for (std::int64_t j = 0; j < kN; ++j) {
        a_host[static_cast<std::size_t>(i * kN + j)] = 0.5 + 0.001 * (i - j);
        row[static_cast<std::size_t>(j)] = core::pack_double(
            a_host[static_cast<std::size_t>(i * kN + j)]);
      }
      lmem.write(A.word_addr(i, 0), row);
    }
    for (std::int64_t i = 0; i < kN; ++i) {
      for (std::int64_t j = 0; j < kN; ++j) {
        b_host[static_cast<std::size_t>(i * kN + j)] = 1.0 + 0.002 * (i + j);
        row[static_cast<std::size_t>(j)] = core::pack_double(
            b_host[static_cast<std::size_t>(i * kN + j)]);
      }
      lmem.write(B.word_addr(i, 0), row);
    }
  }

  // The two on-chip caches and their DMA engines.
  core::PolyMem a_cache(cache_cfg(maf::Scheme::kReRo));  // rows of A
  core::PolyMem b_cache(cache_cfg(maf::Scheme::kReCo));  // cols of B
  maxsim::DmaEngine a_dma(lmem, a_cache);
  maxsim::DmaEngine b_dma(lmem, b_cache);

  const unsigned lanes = a_cache.config().lanes();
  maxsim::DmaStats dma_total;
  std::uint64_t compute_accesses = 0;
  std::vector<hw::Word> c_row(kTile);
  std::vector<core::Word> a_grp(lanes), b_grp(lanes);

  // Classic three-level tiling; each (ti, tj, tk) loads one A tile and
  // one B tile, then reuses them kTile^2 times.
  std::vector<double> c_host(kN * kN, 0.0);
  for (std::int64_t ti = 0; ti < kN; ti += kTile) {
    for (std::int64_t tj = 0; tj < kN; tj += kTile) {
      std::vector<double> acc(kTile * kTile, 0.0);
      for (std::int64_t tk = 0; tk < kN; tk += kTile) {
        dma_total += a_dma.load_tile(A, ti, tk, kTile, kTile, {0, 0});
        dma_total += b_dma.load_tile(B, tk, tj, kTile, kTile, {0, 0});
        // Inner product: row u of the A tile (two row accesses) with
        // column v of the B tile (two column accesses).
        for (std::int64_t u = 0; u < kTile; ++u) {
          for (std::int64_t v = 0; v < kTile; ++v) {
            double sum = 0;
            for (std::int64_t g = 0; g < kTile; g += lanes) {
              a_cache.read_into({access::PatternKind::kRow, {u, g}}, 0,
                                a_grp);
              b_cache.read_into({access::PatternKind::kCol, {g, v}}, 0,
                                b_grp);
              compute_accesses += 2;
              for (unsigned k = 0; k < lanes; ++k)
                sum += core::unpack_double(a_grp[k]) *
                       core::unpack_double(b_grp[k]);
            }
            acc[static_cast<std::size_t>(u * kTile + v)] += sum;
          }
        }
      }
      // Write the finished C tile back to DRAM.
      for (std::int64_t u = 0; u < kTile; ++u) {
        for (std::int64_t v = 0; v < kTile; ++v) {
          c_host[static_cast<std::size_t>((ti + u) * kN + tj + v)] =
              acc[static_cast<std::size_t>(u * kTile + v)];
          c_row[static_cast<std::size_t>(v)] = core::pack_double(
              acc[static_cast<std::size_t>(u * kTile + v)]);
        }
        lmem.write(C.word_addr(ti + u, tj), c_row);
      }
    }
  }

  // Verify against a straightforward host reference.
  double max_err = 0;
  for (std::int64_t i = 0; i < kN; ++i) {
    for (std::int64_t j = 0; j < kN; ++j) {
      double ref = 0;
      for (std::int64_t k = 0; k < kN; ++k)
        ref += a_host[static_cast<std::size_t>(i * kN + k)] *
               b_host[static_cast<std::size_t>(k * kN + j)];
      max_err = std::max(
          max_err,
          std::abs(ref - c_host[static_cast<std::size_t>(i * kN + j)]));
    }
  }

  // The reuse argument, in time: on-chip accesses at one per 120MHz cycle
  // vs an LMem burst per lane-group if there were no cache.
  const double cycle = 1.0 / 120e6;
  const double cached_s = dma_total.lmem_seconds +
                          (dma_total.polymem_cycles + compute_accesses) *
                              cycle;
  const double uncached_s =
      static_cast<double>(compute_accesses) *
      lmem.burst_seconds(lanes * 8);

  std::printf("tiled %lldx%lld matmul, %lldx%lld tiles, 8-lane caches\n",
              static_cast<long long>(kN), static_cast<long long>(kN),
              static_cast<long long>(kTile), static_cast<long long>(kTile));
  std::printf("  DMA: %llu words in %llu parallel accesses, %.1f us DRAM\n",
              static_cast<unsigned long long>(dma_total.words),
              static_cast<unsigned long long>(dma_total.polymem_accesses),
              dma_total.lmem_seconds * 1e6);
  std::printf("  compute: %llu parallel accesses (8 elements each)\n",
              static_cast<unsigned long long>(compute_accesses));
  std::printf("  est. time with PolyMem cache: %.1f us\n", cached_s * 1e6);
  std::printf("  est. time w/o cache (DRAM per group): %.1f us (%.1fx)\n",
              uncached_s * 1e6, uncached_s / cached_s);
  std::printf("  max |err| vs host reference: %.3g\n", max_err);
  return max_err < 1e-9 ? 0 : 1;
}
