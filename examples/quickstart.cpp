// Quickstart: build a PolyMem, write a matrix, and read it back with four
// different parallel access shapes — no reconfiguration in between.
//
// This walks the paper's Fig. 2 idea: one 2D memory, many conflict-free
// "views" of the same data, 8 elements per access.
#include <cstdio>

#include "core/polymem.hpp"

using namespace polymem;

namespace {

void show(const char* label, const std::vector<core::Word>& data) {
  std::printf("%-28s", label);
  for (core::Word w : data) std::printf(" %4llu", static_cast<unsigned long long>(w));
  std::printf("\n");
}

}  // namespace

int main() {
  // A 32KB PolyMem: 8 lanes (2x4 banks), ReRo scheme — rectangles, rows
  // and both diagonals are conflict-free at any position.
  const auto config = core::PolyMemConfig::with_capacity(
      32 * KiB, maf::Scheme::kReRo, /*p=*/2, /*q=*/4);
  core::PolyMem mem(config);
  std::printf("PolyMem: %s, %lldx%lld elements\n",
              config.describe().c_str(),
              static_cast<long long>(config.height),
              static_cast<long long>(config.width));

  // The host fills the memory with recognisable values: 100*i + j.
  for (std::int64_t i = 0; i < config.height; ++i)
    for (std::int64_t j = 0; j < config.width; ++j)
      mem.store({i, j}, static_cast<core::Word>(100 * i + j));

  // Four views of the same data, each one parallel access (one cycle of
  // the hardware), each touching all 8 banks exactly once.
  using access::PatternKind;
  show("row @ (5, 16):", mem.read({PatternKind::kRow, {5, 16}}));
  show("rectangle @ (10, 7):", mem.read({PatternKind::kRect, {10, 7}}));
  show("main diagonal @ (3, 3):", mem.read({PatternKind::kMainDiag, {3, 3}}));
  show("sec. diagonal @ (3, 20):", mem.read({PatternKind::kSecDiag, {3, 20}}));

  // Parallel writes work the same way: write a rectangle, read it as rows.
  std::vector<core::Word> block = {1, 2, 3, 4, 5, 6, 7, 8};
  mem.write({PatternKind::kRect, {20, 12}}, block);
  show("after rect write, row 20:", mem.read({PatternKind::kRow, {20, 8}}));
  show("after rect write, row 21:", mem.read({PatternKind::kRow, {21, 8}}));

  // The capability oracle: what does this scheme serve?
  std::printf("\nReRo support:");
  for (PatternKind kind : access::kAllPatterns)
    std::printf(" %s=%s", access::pattern_name(kind),
                maf::support_level_name(mem.supports(kind)));
  std::printf("\n");
  return 0;
}
