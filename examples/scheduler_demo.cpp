// The Sec. III-A end-to-end design flow: from an application's memory
// access pattern to the best PolyMem configuration.
//
// "To customize PolyMem for a given application, we start from the
//  application memory access pattern, for which we find the optimal
//  parallel access schedule ... We finally select the best configuration
//  based on two metrics: speedup and efficiency."
#include <cstdio>
#include <vector>

#include "sched/scheduler.hpp"

using namespace polymem;
using sched::AccessTrace;

namespace {

void evaluate_workload(const char* name, const AccessTrace& trace) {
  std::printf("\nworkload '%s': %lld distinct elements\n", name,
              static_cast<long long>(trace.size()));
  const std::vector<std::tuple<maf::Scheme, unsigned, unsigned>> configs = {
      {maf::Scheme::kReO, 2, 4},  {maf::Scheme::kReRo, 2, 4},
      {maf::Scheme::kReCo, 2, 4}, {maf::Scheme::kRoCo, 2, 4},
      {maf::Scheme::kReTr, 2, 4},
  };
  const auto ranking = sched::rank_configurations(trace, configs);
  std::printf("  %-6s %-10s %-9s %-11s %s\n", "scheme", "schedule",
              "speedup", "efficiency", "optimal");
  for (const auto& choice : ranking) {
    std::printf("  %-6s %-10lld %-9.2f %-11.3f %s\n",
                maf::scheme_name(choice.scheme),
                static_cast<long long>(choice.metrics.schedule_length),
                choice.metrics.speedup, choice.metrics.efficiency,
                choice.schedule.optimal ? "yes" : "greedy");
  }
  std::printf("  -> pick %s\n", maf::scheme_name(ranking.front().scheme));
}

}  // namespace

int main() {
  std::printf("PolyMem configuration selection (ILP set-covering schedule)\n");

  // 1. A dense matrix tile, unaligned — favours ReO-style rectangles.
  evaluate_workload("dense 6x12 tile @ (1,3)",
                    AccessTrace::dense_block({1, 3}, 6, 12));

  // 2. A row-panel sweep — favours row-capable schemes (ReRo / RoCo).
  evaluate_workload("row panel 2x32",
                    AccessTrace::dense_block({4, 0}, 2, 32));

  // 3. A diagonal band with halo — only ReRo/ReCo serve diagonals.
  evaluate_workload("diagonal band, length 16, halo 1",
                    AccessTrace::diagonal_band({0, 2}, 16, 1));

  // 4. A sparse gather.
  evaluate_workload("random sparse 10x16 @ 30%",
                    AccessTrace::random_sparse({0, 0}, 10, 16, 0.3, 99));
  return 0;
}
