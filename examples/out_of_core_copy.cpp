// Out-of-core quick-start: copy a matrix 8x larger than the on-chip
// PolyMem through the software cache (src/cache).
//
// The README walk-through: both vectors live in simulated board DRAM
// (maxsim::LMem); PolyMem is split into source and destination frame
// pools by stream::out_of_core_copy, and the cache faults tiles in,
// evicts LRU, and (second run) prefetches the next tile asynchronously
// so its DRAM burst hides behind the PolyMem copy cycles.
#include <cstdio>
#include <vector>

#include "stream/out_of_core.hpp"

using namespace polymem;

int main() {
  core::PolyMemConfig cfg;
  cfg.scheme = maf::Scheme::kReRo;
  cfg.p = 2;
  cfg.q = 4;
  cfg.height = 32;
  cfg.width = 64;  // 2048 words on chip

  maxsim::LMem lmem(64u << 20);  // 64 MB board DRAM
  const std::int64_t rows = 256, cols = 64;  // 16384 words: 8x capacity
  const maxsim::LMemMatrix a{0, rows, cols, cols};
  const maxsim::LMemMatrix c{1u << 20, rows, cols, cols};

  // Initialise the source straight in LMem (row k holds k, k+1, ...).
  std::vector<hw::Word> row(static_cast<std::size_t>(cols));
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j)
      row[static_cast<std::size_t>(j)] = static_cast<hw::Word>(i + j);
    lmem.write(a.word_addr(i, 0), row);
  }

  std::printf("out-of-core copy: %lld x %lld words through a %lld x %lld "
              "PolyMem (%.0fx capacity)\n",
              static_cast<long long>(rows), static_cast<long long>(cols),
              static_cast<long long>(cfg.height),
              static_cast<long long>(cfg.width),
              static_cast<double>(rows * cols) / (cfg.height * cfg.width));

  // 1. Synchronous loads: every tile miss stalls on its DRAM burst.
  core::PolyMem mem_sync(cfg);
  const auto sync = stream::out_of_core_copy(lmem, mem_sync, a, c, {});

  // 2. Async prefetch: the next tile streams in on a worker thread.
  core::PolyMem mem_async(cfg);
  runtime::ThreadPool pool(2);
  const auto async = stream::out_of_core_copy(lmem, mem_async, a, c,
                                              {.prefetch_pool = &pool});

  for (const auto* r : {&sync, &async}) {
    const auto& cnt = r->src.counters();
    std::printf("  %-5s: verified=%s hit_rate=%.3f evictions=%llu "
                "prefetch=%llu/%llu modelled=%.3f ms\n",
                r == &sync ? "sync" : "async",
                r->verified ? "yes" : "NO", cnt.hit_rate(),
                static_cast<unsigned long long>(cnt.evictions),
                static_cast<unsigned long long>(cnt.prefetch_useful),
                static_cast<unsigned long long>(cnt.prefetch_issued),
                r->modelled_seconds(120e6) * 1e3);
  }
  std::printf("  prefetch hid %.4f ms of DRAM time\n",
              async.src.lmem_seconds_overlapped * 1e3);

  const bool ok = sync.verified && async.verified &&
                  async.modelled_seconds(120e6) <=
                      sync.modelled_seconds(120e6) + 1e-12;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
