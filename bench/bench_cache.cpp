// Software-cache benchmark runner; emits BENCH_cache.json (committed at
// the repo root).
//
// Two workloads on the modelled timing (LMem burst seconds + PolyMem
// cycles at 120 MHz — deterministic run to run):
//
//  1. stream_copy: the out-of-core STREAM-Copy (working set 8x the
//     on-chip capacity), synchronous loads vs async prefetch on a thread
//     pool. Prefetch overlap is credited only for DRAM time hidden
//     behind PolyMem cycles, so "async no slower than sync" is a real
//     check, not an identity.
//  2. row_sweep: repeated sequential row reads through CachedMatrix,
//     against two baselines computed from the same timing model:
//     DMA-per-access (every row is its own DRAM burst, no cache) and
//     in-core (the whole matrix magically resident after one load — the
//     lower bound no cache can beat).
//
// Every workload verifies its data against a host mirror; a divergence
// (or a hit rate of zero, or async slower than sync) exits nonzero so CI
// can gate on the smoke invocation (--tiny).
//
// Usage: bench_cache [--tiny] [output.json]   (default BENCH_cache.json)
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/matvec_ooc.hpp"
#include "cache/cached_matrix.hpp"
#include "common/rng.hpp"
#include "stream/out_of_core.hpp"

namespace {

using namespace polymem;

constexpr double kClockHz = 120e6;

core::PolyMemConfig pm_cfg() {
  core::PolyMemConfig c;
  c.scheme = maf::Scheme::kReRo;
  c.p = 2;
  c.q = 4;
  c.height = 32;
  c.width = 64;
  return c;
}

void fill_random(maxsim::LMem& lmem, const maxsim::LMemMatrix& m,
                 std::vector<hw::Word>* mirror, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<hw::Word> row(static_cast<std::size_t>(m.cols));
  for (std::int64_t i = 0; i < m.rows; ++i) {
    for (auto& w : row) w = rng.bits();
    lmem.write(m.word_addr(i, 0), row);
    if (mirror) mirror->insert(mirror->end(), row.begin(), row.end());
  }
}

struct CopySide {
  stream::OutOfCoreCopyReport report;
  double modelled_s = 0;
  double gb_per_s = 0;
};

CopySide run_copy(std::int64_t rows, std::int64_t cols,
                  runtime::ThreadPool* pool) {
  maxsim::LMem lmem(64u << 20);
  core::PolyMem mem(pm_cfg());
  const maxsim::LMemMatrix a{0, rows, cols, cols};
  const maxsim::LMemMatrix c{static_cast<std::uint64_t>(2 * rows * cols),
                             rows, cols, cols};
  fill_random(lmem, a, nullptr, 2024);

  CopySide side;
  side.report = stream::out_of_core_copy(
      lmem, mem, a, c,
      {.prefetch_pool = pool, .block_rows = 1, .clock_hz = kClockHz});
  side.modelled_s = side.report.modelled_seconds(kClockHz);
  side.gb_per_s = side.report.bytes() / side.modelled_s / 1e9;
  return side;
}

struct SweepResult {
  cache::CacheStats stats;
  bool verified = true;
  double cached_s = 0, dma_per_access_s = 0, in_core_s = 0;
  double bytes = 0;
};

SweepResult run_row_sweep(std::int64_t rows, std::int64_t cols, int sweeps) {
  maxsim::LMem lmem(64u << 20);
  core::PolyMem mem(pm_cfg());
  const maxsim::LMemMatrix m{0, rows, cols, cols};
  std::vector<hw::Word> mirror;
  mirror.reserve(static_cast<std::size_t>(rows * cols));
  fill_random(lmem, m, &mirror, 4242);

  cache::CachedMatrix cached(lmem, mem, m,
                             core::FramePool::default_tiling(mem.config()),
                             {.clock_hz = kClockHz});
  SweepResult r;
  std::vector<hw::Word> buf(static_cast<std::size_t>(cols));
  for (int s = 0; s < sweeps; ++s)
    for (std::int64_t i = 0; i < rows; ++i) {
      cached.read_row(i, 0, buf);
      for (std::int64_t j = 0; j < cols; ++j)
        if (buf[static_cast<std::size_t>(j)] !=
            mirror[static_cast<std::size_t>(i * cols + j)])
          r.verified = false;
    }

  r.stats = cached.stats();
  r.bytes = static_cast<double>(sweeps) * rows * cols * 8.0;
  const double kernel_s =
      static_cast<double>(r.stats.kernel_accesses) / kClockHz;
  r.cached_s = r.stats.effective_lmem_seconds() +
               static_cast<double>(r.stats.total_polymem_cycles()) / kClockHz;
  // Baseline 1: no cache — every row read is its own DRAM burst plus the
  // same kernel-side parallel accesses.
  r.dma_per_access_s =
      static_cast<double>(sweeps) * rows *
          lmem.burst_seconds(static_cast<std::uint64_t>(cols) * 8) +
      kernel_s;
  // Baseline 2: in-core — one whole-matrix burst, then pure PolyMem.
  r.in_core_s =
      lmem.burst_seconds(static_cast<std::uint64_t>(rows) * cols * 8) +
      kernel_s;
  return r;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  std::string out_path = "BENCH_cache.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiny")
      tiny = true;
    else
      out_path = arg;
  }

  const auto cfg = pm_cfg();
  const std::int64_t capacity = cfg.height * cfg.width;
  // Copy working set: 8x capacity per vector (2x under --tiny).
  const std::int64_t copy_rows = tiny ? 2 * capacity / 64 : 8 * capacity / 64;
  const std::int64_t sweep_rows = copy_rows;
  const std::int64_t cols = 64;
  const int sweeps = tiny ? 2 : 4;

  runtime::ThreadPool pool(2);
  const CopySide sync = run_copy(copy_rows, cols, nullptr);
  const CopySide async = run_copy(copy_rows, cols, &pool);
  const SweepResult sweep = run_row_sweep(sweep_rows, cols, sweeps);

  const auto& sc = sync.report.src.counters();
  const auto& ac = async.report.src.counters();
  const bool async_not_slower = async.modelled_s <= sync.modelled_s + 1e-12;
  const double sweep_hit_rate = sweep.stats.counters().hit_rate();

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"benchmark\": \"polymem_software_cache\",\n"
      << "  \"tiny\": " << (tiny ? "true" : "false") << ",\n"
      << "  \"geometry\": {\"scheme\": \"ReRo\", \"p\": 2, \"q\": 4, "
         "\"height\": " << cfg.height << ", \"width\": " << cfg.width
      << ", \"capacity_words\": " << capacity
      << ",\n    \"matrix_rows\": " << copy_rows << ", \"matrix_cols\": "
      << cols << ", \"working_set_x_capacity\": "
      << fmt(static_cast<double>(copy_rows * cols) / capacity) << "},\n"
      << "  \"stream_copy\": {\n"
      << "    \"elements\": " << sync.report.elements << ",\n"
      << "    \"sync\": {\"verified\": "
      << (sync.report.verified ? "true" : "false")
      << ", \"hit_rate\": " << fmt(sc.hit_rate())
      << ", \"evictions\": " << sc.evictions
      << ", \"modelled_ms\": " << fmt(sync.modelled_s * 1e3)
      << ", \"gb_per_s\": " << fmt(sync.gb_per_s) << "},\n"
      << "    \"async\": {\"verified\": "
      << (async.report.verified ? "true" : "false")
      << ", \"hit_rate\": " << fmt(ac.hit_rate())
      << ", \"evictions\": " << ac.evictions
      << ", \"modelled_ms\": " << fmt(async.modelled_s * 1e3)
      << ", \"gb_per_s\": " << fmt(async.gb_per_s)
      << ",\n      \"prefetch_issued\": " << ac.prefetch_issued
      << ", \"prefetch_useful\": " << ac.prefetch_useful
      << ", \"overlapped_ms\": "
      << fmt(async.report.src.lmem_seconds_overlapped * 1e3) << "},\n"
      << "    \"async_not_slower\": " << (async_not_slower ? "true" : "false")
      << "\n  },\n"
      << "  \"row_sweep\": {\n"
      << "    \"sweeps\": " << sweeps << ", \"verified\": "
      << (sweep.verified ? "true" : "false")
      << ", \"hit_rate\": " << fmt(sweep_hit_rate)
      << ", \"evictions\": " << sweep.stats.counters().evictions << ",\n"
      << "    \"cached_ms\": " << fmt(sweep.cached_s * 1e3)
      << ", \"cached_gb_per_s\": " << fmt(sweep.bytes / sweep.cached_s / 1e9)
      << ",\n    \"dma_per_access_ms\": " << fmt(sweep.dma_per_access_s * 1e3)
      << ", \"dma_per_access_gb_per_s\": "
      << fmt(sweep.bytes / sweep.dma_per_access_s / 1e9)
      << ",\n    \"in_core_ms\": " << fmt(sweep.in_core_s * 1e3)
      << ", \"in_core_gb_per_s\": "
      << fmt(sweep.bytes / sweep.in_core_s / 1e9)
      << ",\n    \"speedup_vs_dma_per_access\": "
      << fmt(sweep.dma_per_access_s / sweep.cached_s) << "\n  }\n"
      << "}\n";
  out.close();

  std::cout << "stream_copy: sync " << fmt(sync.modelled_s * 1e3)
            << " ms, async " << fmt(async.modelled_s * 1e3)
            << " ms (overlap "
            << fmt(async.report.src.lmem_seconds_overlapped * 1e3)
            << " ms), hit rate " << fmt(sc.hit_rate()) << "\n"
            << "row_sweep: cached " << fmt(sweep.bytes / sweep.cached_s / 1e9)
            << " GB/s vs dma-per-access "
            << fmt(sweep.bytes / sweep.dma_per_access_s / 1e9)
            << " GB/s vs in-core "
            << fmt(sweep.bytes / sweep.in_core_s / 1e9)
            << " GB/s, hit rate " << fmt(sweep_hit_rate) << "\n"
            << "wrote " << out_path << "\n";

  if (!sync.report.verified || !async.report.verified || !sweep.verified) {
    std::cerr << "FAIL: data divergence\n";
    return 1;
  }
  if (sc.hit_rate() <= 0.0 || sweep_hit_rate <= 0.0) {
    std::cerr << "FAIL: cache never hit\n";
    return 1;
  }
  if (!async_not_slower) {
    std::cerr << "FAIL: async prefetch slower than synchronous loads\n";
    return 1;
  }
  return 0;
}
