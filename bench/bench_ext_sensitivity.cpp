// EXTENSION: sensitivity of the Fig. 10 curve to the two platform
// parameters the paper measured — the host-call overhead (~300ns) and the
// PolyMem read latency (14 cycles).
//
// The sweep shows the causal structure of the curve: overhead moves the
// half-peak knee (small-copy regime), latency only shifts the constant
// cycle offset, and neither touches the saturated bandwidth.
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "stream/host.hpp"

namespace {

// Copied-KB at which the measured rate first exceeds half of peak, plus
// the saturated rate, for a given overhead/latency variant.
struct Knee {
  double half_peak_kb = -1;
  double max_rate_mbs = 0;
};

Knee measure(double overhead_ns, unsigned latency) {
  using namespace polymem;
  stream::StreamDesignConfig cfg;
  cfg.vector_capacity = 32768;
  cfg.width = 512;
  cfg.read_latency = latency;
  stream::StreamHost host(cfg);
  // Override the PCIe overhead via a custom link.
  host.dfe().pcie() = maxsim::PcieLink(2.0e9, overhead_ns);
  std::vector<double> v(32768, 1.0);
  host.load(v, v, v);
  const double peak = host.theoretical_peak_bytes_per_s(stream::Mode::kCopy);
  Knee knee;
  for (std::int64_t n = 8; n <= 32768; n *= 2) {
    const auto r = host.run(stream::Mode::kCopy, n, 1);
    const double rate = r.best_rate_bytes_per_s();
    knee.max_rate_mbs = std::max(knee.max_rate_mbs, rate / 1e6);
    if (knee.half_peak_kb < 0 && rate > 0.5 * peak)
      knee.half_peak_kb = n * 8.0 / 1024;
  }
  return knee;
}

}  // namespace

int main() {
  using namespace polymem;
  TextTable table(
      "Extension: Fig. 10 sensitivity to overhead and read latency");
  table.set_header({"overhead ns", "latency cyc", "half-peak at KB",
                    "max rate MB/s"});
  for (double overhead : {100.0, 300.0, 1000.0}) {
    for (unsigned latency : {7u, 14u, 28u}) {
      const Knee knee = measure(overhead, latency);
      table.add_row({TextTable::num(overhead, 0),
                     TextTable::num(static_cast<int>(latency)),
                     TextTable::num(knee.half_peak_kb, 2),
                     TextTable::num(knee.max_rate_mbs, 0)});
    }
  }
  std::cout << table
            << "  -> the knee scales with the call overhead (the paper's\n"
               "     300ns explains its Fig. 10 ramp); latency only adds a\n"
               "     constant; the plateau is overhead- and latency-"
               "independent.\n";
  return 0;
}
