// Design-choice ablations called out in DESIGN.md:
//
//  1. Modular multi-kernel vs fused single-kernel design (Sec. III-C:
//     the modular variant "consumes twice as many resources").
//  2. Read-port bank replication (the paper's choice) vs hypothetical
//     time-multiplexing of one physical port: replication costs BRAM but
//     keeps per-port bandwidth; multiplexing halves effective bandwidth
//     per added port.
//  3. Full crossbar (the paper's shuffle) vs a Benes-network shuffle:
//     crosspoint cost n^2 vs n log2(n), the logic the paper attributes
//     its supra-linear scaling to.
#include <cmath>
#include <iostream>

#include "common/math.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "dse/explorer.hpp"
#include "hw/benes.hpp"
#include "hw/crossbar.hpp"
#include "synth/fmax_model.hpp"
#include "stream/modular.hpp"
#include "synth/resource_model.hpp"

int main() {
  using namespace polymem;
  const synth::ResourceModel resources;

  // --- 1. modular vs fused ------------------------------------------------
  // Resources from the model; cycles from running BOTH implementations
  // (stream/design.hpp fused, stream/modular.hpp multi-kernel) on the
  // same Copy workload.
  TextTable t1("Ablation 1: fused vs modular kernel design");
  t1.set_header({"config", "fused logic", "modular logic", "fused cycles",
                 "modular cycles"});
  {
    stream::StreamDesignConfig scfg;
    scfg.vector_capacity = 4096;
    scfg.width = 512;
    const auto cfg = scfg.polymem_config();
    const auto fused_est = resources.estimate(cfg);
    const auto modular_est = resources.estimate_modular(cfg);

    stream::StreamDesign fused(scfg);
    fused.controller().start(stream::Mode::kCopy, 4096);
    std::uint64_t fused_cycles = 0;
    while (!fused.controller().done()) {
      fused.controller().tick();
      ++fused_cycles;
    }
    stream::ModularCopyDesign modular(scfg);
    modular.start(stream::Mode::kCopy, 4096);
    const std::uint64_t modular_cycles = modular.run();

    t1.add_row({"Copy 4096 doubles, 8L",
                TextTable::num(fused_est.logic_pct, 2) + "%",
                TextTable::num(modular_est.logic_pct, 2) + "%",
                TextTable::num(fused_cycles),
                TextTable::num(modular_cycles)});
  }
  std::cout << t1
            << "  -> modularity costs area (2x, Sec. III-C), not "
               "throughput: the cycle\n     counts differ only by the "
               "inter-kernel pipeline depth.\n\n";

  // --- 2. port replication vs time multiplexing ---------------------------
  TextTable t2(
      "Ablation 2: read-port replication vs time-multiplexed single port");
  t2.set_header({"ports", "replicated BW", "replicated BRAM%",
                 "multiplexed BW", "multiplexed BRAM%"});
  const dse::DseExplorer explorer;
  for (unsigned ports = 1; ports <= 4; ++ports) {
    const auto rep = explorer.evaluate({maf::Scheme::kReRo, 512, 8, ports});
    // Time multiplexing: one copy of the data (1-port BRAM cost), but the
    // single physical port serves `ports` logical consumers in turn.
    const auto single = explorer.evaluate({maf::Scheme::kReRo, 512, 8, 1});
    const double mux_bw = single.read_bw_bytes_per_s;  // shared, not scaled
    t2.add_row({TextTable::num(static_cast<int>(ports)),
                format_bandwidth(rep.read_bw_bytes_per_s, true),
                TextTable::num(rep.resources.bram_pct, 1) + "%",
                format_bandwidth(mux_bw, true),
                TextTable::num(single.resources.bram_pct, 1) + "%"});
  }
  std::cout << t2
            << "  -> replication buys aggregated bandwidth with BRAM, the\n"
               "     paper's trade (Sec. IV-C); multiplexing caps at 1-port"
               " bandwidth.\n\n";

  // --- 3. full crossbar vs Benes network ----------------------------------
  // Both networks are implemented in src/hw (the Benes with its looping
  // route computation, property-tested equivalent to the crossbar); the
  // comparison below counts real switches, not a formula.
  TextTable t3("Ablation 3: shuffle network cost (implemented, not modelled)");
  t3.set_header({"lanes", "crossbar crosspoints", "Benes stages",
                 "Benes 2x2 switches", "crossbar/Benes area"});
  for (unsigned lanes : {4u, 8u, 16u, 32u, 64u}) {
    const auto full = hw::crossbar_crosspoints(lanes);
    const auto benes = 4 * hw::benes_switches(lanes);  // 4 xpoints / switch
    t3.add_row({TextTable::num(static_cast<int>(lanes)),
                TextTable::num(full),
                TextTable::num(static_cast<int>(hw::benes_stages(lanes))),
                TextTable::num(hw::benes_switches(lanes)),
                TextTable::num(static_cast<double>(full) / benes, 2) + "x"});
  }
  std::cout << t3
            << "  -> the paper's full crossbars explain the supra-linear\n"
               "     logic growth; the Benes network (hw/benes.hpp) scales\n"
               "     n*log(n) but its looping route computation is a\n"
               "     sequential algorithm — impractical combinationally in\n"
               "     one cycle, which is why MAX-PolyMem pays for crossbars.\n";
  return 0;
}
