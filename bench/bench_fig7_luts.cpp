// Reproduces paper Fig. 7: LUT utilisation (%) across the DSE grid.
// The paper reports "similar trends to the logic utilization ... varying
// between 7% and 28%".
#include <algorithm>
#include <iostream>

#include "dse/report.hpp"

int main() {
  using namespace polymem;
  const dse::DseExplorer explorer;
  const auto results = explorer.explore();
  std::cout << dse::fig7_lut_utilisation(results) << "\n";

  double lo = 100, hi = 0;
  for (const auto& r : results) {
    lo = std::min(lo, r.resources.lut_pct);
    hi = std::max(hi, r.resources.lut_pct);
  }
  std::cout << "LUT utilisation range (model): "
            << TextTable::num(lo, 1) << "% .. " << TextTable::num(hi, 1)
            << "%   (paper: 7% .. 28%)\n";
  return 0;
}
