// EXTENSION: application kernels on the cycle-accurate PolyMem — the
// "proof-of-concept, systematic use of MAX-PolyMem for more complex
// applications" the paper's conclusion announces as future work.
//
// Every kernel is verified against a host reference during the run; the
// table reports simulated cycles and the realised speedup over a scalar
// one-element-per-cycle memory.
#include <iostream>
#include <numeric>

#include "apps/matvec_app.hpp"
#include "apps/stencil_app.hpp"
#include "apps/transpose_app.hpp"
#include "common/table.hpp"

int main() {
  using namespace polymem;
  TextTable table("Application kernels on MAX-PolyMem (8 lanes, latency 14)");
  table.set_header({"kernel", "problem", "scheme", "cycles", "reads",
                    "writes", "elem/cycle", "speedup vs scalar",
                    "verified"});
  bool all_ok = true;

  auto add = [&](const char* name, const char* problem, const char* scheme,
                 const apps::AppReport& r) {
    all_ok = all_ok && r.verified;
    table.add_row({name, problem, scheme, TextTable::num(r.cycles),
                   TextTable::num(r.parallel_reads),
                   TextTable::num(r.parallel_writes),
                   TextTable::num(r.elements_per_cycle(), 2),
                   TextTable::num(r.speedup_vs_scalar(), 1) + "x",
                   r.verified ? "yes" : "NO"});
  };

  {  // Transpose: the ReTr showcase, read+write concurrent.
    for (std::int64_t n : {16, 64, 128}) {
      apps::TransposeApp app(n);
      std::vector<hw::Word> src(static_cast<std::size_t>(n * n));
      std::iota(src.begin(), src.end(), 0u);
      app.load_source(src);
      add("transpose", (std::to_string(n) + "x" + std::to_string(n)).c_str(),
          "ReTr", app.run());
    }
  }
  {  // Stencil: unaligned rectangles, gather redundancy visible.
    for (std::int64_t n : {16, 64}) {
      apps::StencilApp app(n);
      std::vector<double> grid(static_cast<std::size_t>(n * n));
      for (std::int64_t i = 0; i < n; ++i)
        for (std::int64_t j = 0; j < n; ++j)
          grid[static_cast<std::size_t>(i * n + j)] = 0.1 * i + 0.2 * j;
      app.load_grid(grid);
      add("stencil-9pt",
          (std::to_string(n) + "x" + std::to_string(n)).c_str(), "ReO",
          app.run());
    }
  }
  {  // MatVec: the pure-bandwidth kernel, 8 and 16 lanes.
    for (auto [n, q] : {std::pair<std::int64_t, unsigned>{64, 4}, {64, 8}}) {
      apps::MatVecApp app(n, 2, q);
      std::vector<double> a(static_cast<std::size_t>(n * n), 0.5);
      app.load_matrix(a);
      std::vector<double> x(static_cast<std::size_t>(n), 2.0);
      std::vector<double> y(static_cast<std::size_t>(n));
      add("matvec",
          (std::to_string(n) + "x" + std::to_string(n) + " " +
           std::to_string(2 * q) + "L")
              .c_str(),
          "ReRo", app.run(x, y));
    }
  }

  std::cout << table
            << "  transpose moves 2 elements/cycle/lane (concurrent R+W);\n"
               "  stencil pays gather overlap (32 fetched for 24 useful);\n"
               "  matvec saturates the read port at 1 access/cycle.\n";
  return all_ok ? 0 : 1;
}
