// Application-suite benchmark runner; emits BENCH_apps.json (committed
// at the repo root).
//
// EXTENSION: application kernels on the PolyMem engines — the
// "proof-of-concept, systematic use of MAX-PolyMem for more complex
// applications" the paper's conclusion announces as future work. Six
// kernels span the Table-I pattern families: transpose (ReTr
// rect/trect), 9-point stencil (ReO unaligned rects), matvec (ReRo
// rows), tiled GEMM (aligned rects, scheme-agnostic), FFT
// transpose-and-twiddle (ReTr multiview + a diagonally skewed ReRo
// twiddle ROM) and histogram scatter-add (the deliberate conflict
// provoker on the software cache's scalar-fallback path).
//
// Every row is doubly differential: the kernel verifies its output
// against a host reference during the run, AND its recorded access
// trace is replayed through src/replay against the canonical host
// oracle (record -> replay -> bit-identical checksums). Any divergence
// exits nonzero so CI can gate on the smoke invocation (--tiny).
//
// Usage: bench_apps [--tiny] [output.json]   (default BENCH_apps.json)
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "apps/fft_twiddle_app.hpp"
#include "apps/histogram_app.hpp"
#include "apps/matvec_app.hpp"
#include "apps/stencil_app.hpp"
#include "apps/tiled_gemm_app.hpp"
#include "apps/transpose_app.hpp"
#include "common/table.hpp"
#include "replay/replay.hpp"

namespace {

using namespace polymem;

struct Row {
  std::string kernel;
  std::string problem;
  std::string scheme;
  apps::AppReport app;
  std::vector<replay::ReplayReport> replays;  // recorded traces, replayed
  std::int64_t lint_errors = -1;              // >= 0: provoked diagnostics
  std::int64_t lint_warnings = -1;

  bool ok() const {
    if (!app.verified) return false;
    for (const auto& r : replays)
      if (!r.verified()) return false;
    return true;
  }
};

replay::ReplayReport replay_native(sched::TraceRecorder& recorder,
                                   maf::Scheme scheme) {
  replay::ReplayOptions options;
  options.scheme = scheme;
  return replay::replay(recorder.finish(), options);
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  std::string out_path = "BENCH_apps.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiny")
      tiny = true;
    else
      out_path = arg;
  }

  std::vector<Row> rows;

  {  // Tiled GEMM: aligned rectangles, runs on every scheme unchanged.
    const std::int64_t n = tiny ? 8 : 32;
    apps::TiledGemmApp app(n, maf::Scheme::kReO);
    auto rec = app.make_recorder();
    app.set_recorder(&rec);
    std::vector<double> a(static_cast<std::size_t>(n * n)),
        b(static_cast<std::size_t>(n * n));
    for (std::size_t k = 0; k < a.size(); ++k) {
      a[k] = 0.25 * static_cast<double>(k % 17) - 1.0;
      b[k] = 0.125 * static_cast<double>(k % 13) + 0.5;
    }
    app.load(a, b);
    Row row{"tiled-gemm", std::to_string(n) + "x" + std::to_string(n), "ReO",
            app.run(), {}};
    row.replays.push_back(replay_native(rec, maf::Scheme::kReO));
    rows.push_back(std::move(row));
  }
  {  // Stencil: unaligned rectangles, gather redundancy visible.
    const std::int64_t n = tiny ? 16 : 64;
    apps::StencilApp app(n);
    auto rec = app.make_recorder();
    app.set_recorder(&rec);
    std::vector<double> grid(static_cast<std::size_t>(n * n));
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t j = 0; j < n; ++j)
        grid[static_cast<std::size_t>(i * n + j)] = 0.1 * i + 0.2 * j;
    app.load_grid(grid);
    Row row{"stencil-9pt", std::to_string(n) + "x" + std::to_string(n), "ReO",
            app.run(), {}};
    row.replays.push_back(replay_native(rec, maf::Scheme::kReO));
    rows.push_back(std::move(row));
  }
  {  // Transpose: the ReTr showcase, read+write concurrent.
    const std::int64_t n = tiny ? 16 : 64;
    apps::TransposeApp app(n);
    auto rec = app.make_recorder();
    app.set_recorder(&rec);
    std::vector<hw::Word> src(static_cast<std::size_t>(n * n));
    std::iota(src.begin(), src.end(), 0u);
    app.load_source(src);
    Row row{"transpose", std::to_string(n) + "x" + std::to_string(n), "ReTr",
            app.run(), {}};
    row.replays.push_back(replay_native(rec, maf::Scheme::kReTr));
    rows.push_back(std::move(row));
  }
  {  // FFT transpose-and-twiddle: rect/trect multiview + skewed ROM.
    const std::int64_t n = tiny ? 8 : 32;
    apps::FftTwiddleApp app(n);
    auto data_rec = app.make_data_recorder();
    auto rom_rec = app.make_rom_recorder();
    app.set_recorders(&data_rec, &rom_rec);
    std::vector<double> src(static_cast<std::size_t>(n * n));
    for (std::size_t k = 0; k < src.size(); ++k)
      src[k] = 0.01 * static_cast<double>(k) - 2.0;
    app.load(src);
    Row row{"fft-twiddle", std::to_string(n) + "x" + std::to_string(n),
            "ReTr+ReRo", app.run(), {}};
    row.replays.push_back(replay_native(data_rec, maf::Scheme::kReTr));
    row.replays.push_back(replay_native(rom_rec, maf::Scheme::kReRo));
    rows.push_back(std::move(row));
  }
  {  // Histogram scatter-add: the conflict provoker (scalar fallback).
    const std::int64_t bins = tiny ? 32 : 256;
    const std::int64_t samples = tiny ? 256 : 4096;
    apps::HistogramScatterApp app(bins, 8);
    auto rec = app.make_recorder();
    app.set_recorder(&rec);
    Row row{"histogram",
            std::to_string(bins) + " bins, " + std::to_string(samples) +
                " samples",
            "ReRo", app.run(samples), {}};
    row.replays.push_back(replay_native(rec, maf::Scheme::kReRo));
    row.lint_errors = static_cast<std::int64_t>(app.lint_report().errors());
    row.lint_warnings =
        static_cast<std::int64_t>(app.lint_report().warnings());
    rows.push_back(std::move(row));
  }
  {  // MatVec: the pure-bandwidth kernel.
    const std::int64_t n = tiny ? 16 : 64;
    apps::MatVecApp app(n);
    auto rec = app.make_recorder();
    app.set_recorder(&rec);
    std::vector<double> a(static_cast<std::size_t>(n * n), 0.5);
    app.load_matrix(a);
    std::vector<double> x(static_cast<std::size_t>(n), 2.0);
    std::vector<double> y(static_cast<std::size_t>(n));
    Row row{"matvec", std::to_string(n) + "x" + std::to_string(n), "ReRo",
            app.run(x, y), {}};
    row.replays.push_back(replay_native(rec, maf::Scheme::kReRo));
    rows.push_back(std::move(row));
  }

  bool all_ok = true;
  TextTable table("Application kernels on MAX-PolyMem (8 lanes)");
  table.set_header({"kernel", "problem", "scheme", "cycles", "reads",
                    "writes", "elem/cycle", "replay", "verified"});
  for (const Row& row : rows) {
    all_ok = all_ok && row.ok();
    std::int64_t replay_batched = 0, replay_fallback = 0;
    bool replay_ok = true;
    for (const auto& r : row.replays) {
      replay_batched += r.batched_accesses;
      replay_fallback += r.fallback_accesses;
      replay_ok = replay_ok && r.verified();
    }
    table.add_row(
        {row.kernel, row.problem, row.scheme, TextTable::num(row.app.cycles),
         TextTable::num(row.app.parallel_reads),
         TextTable::num(row.app.parallel_writes),
         TextTable::num(row.app.elements_per_cycle(), 2),
         (replay_ok ? "ok" : "FAIL") + std::string(" (") +
             std::to_string(replay_batched) + "b+" +
             std::to_string(replay_fallback) + "s)",
         row.ok() ? "yes" : "NO"});
  }

  std::ofstream out(out_path);
  out << "{\n  \"benchmark\": \"polymem_app_suite\",\n  \"tiny\": "
      << (tiny ? "true" : "false") << ",\n  \"rows\": [\n";
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const Row& row = rows[k];
    out << "    {\"kernel\": \"" << row.kernel << "\", \"problem\": \""
        << row.problem << "\", \"scheme\": \"" << row.scheme << "\",\n"
        << "     \"cycles\": " << row.app.cycles
        << ", \"parallel_reads\": " << row.app.parallel_reads
        << ", \"parallel_writes\": " << row.app.parallel_writes
        << ", \"elements_touched\": " << row.app.elements_touched
        << ",\n     \"elements_per_cycle\": "
        << fmt(row.app.elements_per_cycle())
        << ", \"verified\": " << (row.app.verified ? "true" : "false")
        << ",\n     \"replays\": [";
    for (std::size_t r = 0; r < row.replays.size(); ++r) {
      const auto& rep = row.replays[r];
      out << (r ? ", " : "") << "{\"scheme\": \""
          << maf::scheme_name(rep.scheme) << "\", \"ops\": " << rep.ops
          << ", \"batched\": " << rep.batched_accesses
          << ", \"fallback\": " << rep.fallback_accesses
          << ", \"checksums\": " << rep.checksums_checked
          << ", \"verified\": " << (rep.verified() ? "true" : "false")
          << "}";
    }
    out << "]";
    if (row.lint_errors >= 0)
      out << ",\n     \"provoked_lint\": {\"errors\": " << row.lint_errors
          << ", \"warnings\": " << row.lint_warnings << "}";
    out << "}" << (k + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  out.close();

  std::cout << table << "  replay column: record -> replay accesses served "
            << "batched (b) vs scalar fallback (s),\n  each run verified "
            << "against the canonical host oracle.\n"
            << "wrote " << out_path << "\n";
  return all_ok ? 0 : 1;
}
