// Scheduler ablation (Sec. III-A): exact ILP-equivalent set covering vs
// the greedy heuristic — solution quality and solve time across workload
// classes, plus the per-scheme configuration ranking.
#include <chrono>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "sched/execute.hpp"
#include "sched/scheduler.hpp"

int main() {
  using namespace polymem;
  using Clock = std::chrono::steady_clock;

  struct Workload {
    const char* name;
    sched::AccessTrace trace;
  };
  const std::vector<Workload> workloads = {
      {"dense 8x16 aligned", sched::AccessTrace::dense_block({0, 0}, 8, 16)},
      {"dense 6x10 unaligned", sched::AccessTrace::dense_block({1, 3}, 6, 10)},
      {"5pt stencil 4x8",
       sched::AccessTrace::stencil({2, 2}, 4, 8,
                                   {{0, 0}, {-1, 0}, {1, 0}, {0, -1}, {0, 1}})},
      {"diag band 16 halo 1", sched::AccessTrace::diagonal_band({0, 2}, 16, 1)},
      {"sparse 10x14 @35%",
       sched::AccessTrace::random_sparse({0, 0}, 10, 14, 0.35, 5)},
  };

  TextTable table("Scheduler ablation: exact vs greedy (ReRo 2x4)");
  table.set_header({"workload", "elements", "exact len", "greedy len",
                    "exact ms", "greedy ms", "greedy overhead"});
  const sched::Scheduler sched_rero(maf::Scheme::kReRo, 2, 4);
  for (const auto& w : workloads) {
    const auto t0 = Clock::now();
    const auto exact = sched_rero.schedule(w.trace, sched::SolverKind::kExact);
    const auto t1 = Clock::now();
    const auto greedy =
        sched_rero.schedule(w.trace, sched::SolverKind::kGreedy);
    const auto t2 = Clock::now();
    const double exact_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double greedy_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    table.add_row(
        {w.name, TextTable::num(w.trace.size()),
         TextTable::num(exact.length()), TextTable::num(greedy.length()),
         TextTable::num(exact_ms, 2), TextTable::num(greedy_ms, 2),
         TextTable::num(
             100.0 * (greedy.length() - exact.length()) /
                 std::max<std::int64_t>(1, exact.length()),
             1) +
             "%"});
  }
  std::cout << table << "\n";

  // Predicted vs simulated speedup: execute each exact schedule on the
  // cycle-accurate memory (14-cycle read latency) and compare against the
  // scheduler's steady-state prediction.
  TextTable sim("Predicted vs cycle-accurate simulated speedup (ReRo 2x4)");
  sim.set_header({"workload", "schedule", "predicted", "simulated",
                  "sim cycles"});
  for (const auto& w : workloads) {
    auto cfg = core::PolyMemConfig::with_capacity(32 * KiB,
                                                  maf::Scheme::kReRo, 2, 4);
    core::CyclePolyMem mem(cfg);
    for (std::int64_t i = 0; i < cfg.height; ++i)
      for (std::int64_t j = 0; j < cfg.width; ++j)
        mem.functional().store({i, j},
                               static_cast<core::Word>(i * 1000 + j));
    sched::Scheduler bounded(maf::Scheme::kReRo, 2, 4);
    bounded.set_bounds(cfg.height, cfg.width);
    const auto schedule = bounded.schedule(w.trace, sched::SolverKind::kExact);
    const auto metrics = bounded.evaluate(w.trace, schedule);
    const auto result = sched::execute_schedule(
        w.trace, schedule, mem, [](access::Coord c) {
          return static_cast<core::Word>(c.i * 1000 + c.j);
        });
    sim.add_row({w.name, TextTable::num(schedule.length()),
                 TextTable::num(metrics.speedup, 2) + "x",
                 TextTable::num(result.measured_speedup, 2) + "x",
                 TextTable::num(result.polymem_cycles)});
  }
  std::cout << sim << "\n";

  // Configuration ranking for the diagonal workload: the multiview win.
  const auto& diag = workloads[3].trace;
  TextTable rank("Configuration ranking, diagonal-band workload");
  rank.set_header({"scheme", "schedule", "speedup", "efficiency"});
  const std::vector<std::tuple<maf::Scheme, unsigned, unsigned>> configs = {
      {maf::Scheme::kReO, 2, 4},  {maf::Scheme::kReRo, 2, 4},
      {maf::Scheme::kReCo, 2, 4}, {maf::Scheme::kRoCo, 2, 4},
      {maf::Scheme::kReTr, 2, 4}};
  for (const auto& choice : sched::rank_configurations(diag, configs)) {
    rank.add_row({maf::scheme_name(choice.scheme),
                  TextTable::num(choice.metrics.schedule_length),
                  TextTable::num(choice.metrics.speedup, 2),
                  TextTable::num(choice.metrics.efficiency, 3)});
  }
  std::cout << rank;
  return 0;
}
