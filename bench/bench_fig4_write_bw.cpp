// Reproduces paper Fig. 4: write bandwidth per port (GB/s) across the DSE
// grid — model series plus the paper-derived reference (Table IV frequency
// x lanes x 8 bytes) and the headline peaks.
#include <iostream>

#include "common/units.hpp"
#include "dse/report.hpp"

int main() {
  using namespace polymem;
  const dse::DseExplorer explorer;
  const auto results = explorer.explore();
  std::cout << dse::fig4_write_bandwidth(results) << "\n";

  // Paper-derived reference series for comparison.
  std::cout << dse::figure_series(
                   results, "Fig. 4 reference (paper Table IV frequencies)",
                   [](const dse::DseResult& r) {
                     return *r.write_bw_paper / GB;
                   })
            << "\n";

  const auto best = explorer.best_write_bandwidth();
  std::cout << "Peak write bandwidth (model): "
            << format_bandwidth(best.write_bw_bytes_per_s, true) << " at "
            << best.point.size_kb << "KB, " << best.point.lanes << " lanes, "
            << maf::scheme_name(best.point.scheme) << "\n"
            << "Paper: 'peak write bandwidth ... exceeds 22GB/s for the "
               "512KB, 16-lane, ReO configuration'\n";
  return 0;
}
