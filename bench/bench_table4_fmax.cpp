// Reproduces paper Table IV: maximum clock frequencies of all 90 DSE
// design points, as predicted by the calibrated synthesis model, next to
// the paper's published values, with per-scheme error statistics.
//
// Usage: bench_table4_fmax [csv-output-dir]
// With a directory argument, also writes every DSE table/figure as CSV.
#include <iostream>

#include "dse/report.hpp"

int main(int argc, char** argv) {
  using namespace polymem;
  const dse::DseExplorer explorer;
  const auto results = explorer.explore();
  if (argc > 1) {
    const auto written = dse::write_all_csv(argv[1], results);
    std::cout << "wrote " << written.size() << " CSV artefacts to " << argv[1]
              << "\n";
  }
  std::cout << dse::table4_model(results) << "\n";
  std::cout << dse::table4_paper() << "\n";
  std::cout << dse::table4_error(results) << "\n";
  std::cout << "Paper headline checks:\n"
            << "  highest frequency (paper): 202 MHz, 512KB 8-lane 1-port ReO\n"
            << "  model for that point     : "
            << TextTable::num(
                   explorer
                       .evaluate({maf::Scheme::kReO, 512, 8, 1})
                       .fmax_mhz,
                   0)
            << " MHz\n";
  return 0;
}
