// Reproduces paper Fig. 8: BRAM utilisation (%) across the DSE grid, with
// the Sec. IV-C anchors and the scheme-independence observation.
#include <algorithm>
#include <iostream>

#include "dse/report.hpp"

int main() {
  using namespace polymem;
  const dse::DseExplorer explorer;
  const auto results = explorer.explore();
  std::cout << dse::fig8_bram_utilisation(results) << "\n";

  auto bram = [&](unsigned kb, unsigned l, unsigned p) {
    return explorer.evaluate({maf::Scheme::kReRo, kb, l, p}).resources
        .bram_pct;
  };
  std::cout << "Sec. IV-C anchors (paper -> model):\n"
            << "  512KB  8L 1P: 16.07% -> " << TextTable::num(bram(512, 8, 1), 2)
            << "%\n"
            << "  512KB 16L 1P: 19.31% -> " << TextTable::num(bram(512, 16, 1), 2)
            << "%\n"
            << "  512KB  8L 2P: 29.04% -> " << TextTable::num(bram(512, 8, 2), 2)
            << "%\n"
            << "  2MB   16L 2P: 97.00% -> " << TextTable::num(bram(2048, 16, 2), 2)
            << "%\n";

  // "the memory scheme has no influence on the amount of BRAMs used".
  bool scheme_independent = true;
  for (const auto& col : synth::table4_columns()) {
    const auto ref = explorer
                         .evaluate({maf::Scheme::kReO, col.size_kb, col.lanes,
                                    col.ports})
                         .resources.bram36;
    for (maf::Scheme s : maf::kAllSchemes)
      scheme_independent =
          scheme_independent &&
          explorer.evaluate({s, col.size_kb, col.lanes, col.ports})
                  .resources.bram36 == ref;
  }
  std::cout << "BRAM count independent of scheme: "
            << (scheme_independent ? "yes" : "NO") << " (paper: yes)\n";
  return 0;
}
