// EXTENSION: the full STREAM suite (Copy, Scale, Sum, Triad) on the
// paper's design — the analysis Sec. VII defers to future work
// ("we will finalize the implementation of STREAM and use it for more
// in-depth analysis").
//
// Sum and Triad engage BOTH read ports plus the write port concurrently
// (3 streams), lifting the aggregated ceiling from 15 360 to 23 040 MB/s.
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "stream/host.hpp"

int main() {
  using namespace polymem;
  stream::StreamHost host;  // the paper's full-size design
  const std::int64_t cap = host.design().config().vector_capacity;
  std::vector<double> v(static_cast<std::size_t>(cap), 1.0);
  host.load(v, v, v);

  TextTable table("Extension: full STREAM on MAX-PolyMem (120MHz, 8 lanes)");
  table.set_header({"Function", "words/elem", "peak MB/s", "n=8K MB/s",
                    "n=max MB/s", "% of peak"});
  const std::vector<std::pair<stream::Mode, int>> kernels = {
      {stream::Mode::kCopy, 2},
      {stream::Mode::kScale, 2},
      {stream::Mode::kSum, 3},
      {stream::Mode::kTriad, 3},
  };
  bool all_above_99 = true;
  for (const auto& [mode, words] : kernels) {
    const double peak = host.theoretical_peak_bytes_per_s(mode);
    const auto small = host.run(mode, 8192, 2);
    const auto large = host.run(mode, cap, 2);
    const double ratio = large.best_rate_bytes_per_s() / peak;
    all_above_99 = all_above_99 && ratio > 0.99;
    table.add_row({stream::mode_name(mode), TextTable::num(words),
                   TextTable::num(peak / 1e6, 0),
                   TextTable::num(small.best_rate_bytes_per_s() / 1e6, 0),
                   TextTable::num(large.best_rate_bytes_per_s() / 1e6, 0),
                   TextTable::num(100 * ratio, 2)});
  }
  std::cout << table
            << "  Copy/Scale: 1 read + 1 write port. Sum/Triad: 2 read + 1 "
               "write port.\n"
            << "  every kernel sustains > 99% of its port-limited peak: "
            << (all_above_99 ? "yes" : "NO") << "\n";
  return all_above_99 ? 0 : 1;
}
