// Service-layer load generator; emits BENCH_service.json (committed at
// the repo root).
//
// Closed-loop clients hammer the PolyMem-as-a-service engine
// (src/service) with Zipf-skewed scan bursts: each client repeatedly
// picks a popular anchor, then walks consecutive rows — the streaming
// shape the per-port coalescer turns into one compiled ExecPlan
// gather/scatter per run. A quarter of the bursts are WRITES: reads
// draw from a shared read-only region (so the serial replay stays a
// valid oracle under concurrency), writes land in each client's
// private row band (per-client FIFO makes the final image
// deterministic), and every write's payload is derived from its
// request tag — so both the completed reads and the end-state memory
// are differentially verifiable. Four configurations over the SAME
// trace:
//
//  1. serial_baseline — no service at all: one synchronous read_into
//     per request on a plain PolyMem (the ~95 ns/access plan-template
//     path of BENCH_core.json). This is the throughput to beat.
//  2. engine_1port    — every client funnels into one bounded queue;
//     bursts from different clients interleave, so runs stay short.
//  3. engine_multiport — one queue per client (ports = clients,
//     read_ports = ports): each port's FIFO prefix is one client's
//     burst, so the drain coalesces near-full runs and serves them on
//     the ~5 ns/access compiled SIMD path.
//  4. sharded_multitenant — a 256x256 LMem-resident matrix served by 4
//     PolyMem shards (each a write-back TileCache over the shared
//     LMem), 6 tenants routed by anchor-tile hash; Zipf tile
//     popularity makes the per-shard caches earn their keep.
//
// Each engine configuration is measured in two phases:
//
//  - *closed loop*: clients run on their own threads, retrying on
//    kOverloaded — this is where latency percentiles, shedding and
//    retry counts come from. Its wall clock includes the clients' own
//    submit cost; on hosts with fewer cores than threads the producers
//    time-share the clock against the drain, so this number undersells
//    the drain on small machines.
//  - *saturated drain*: the same trace is queued wave by wave with the
//    drain stopped, then the drain is pumped to quiescence on the
//    caller's thread and only the pump is timed. That is the drain's
//    sustained service rate — coalesce + compile + gather + retire —
//    independent of the host's core count.
//
// Every completed read is copied into a slot addressed by its request
// tag and differentially verified bit-for-bit against the serial
// replay (direct configs) or the host mirror of the LMem matrix
// (sharded config), in both phases. Latency is complete_cycle -
// submit_cycle on the engine's modeled clock, summarized as p50/p95/p99
// through the common/stats Reservoir. A data divergence — or, in the
// full run, a saturated multi-port drain that fails to outrun the
// serial baseline — exits nonzero so CI can gate on the smoke
// invocation (--tiny).
//
// Usage: bench_service [--tiny] [output.json]  (default BENCH_service.json)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "maxsim/lmem.hpp"
#include "runtime/thread_pool.hpp"
#include "service/sharded.hpp"

namespace {

using namespace polymem;

constexpr double kZipfSkew = 0.9;
constexpr std::int64_t kBurstMin = 8;
constexpr std::int64_t kBurstMax = 16;
/// Fraction of bursts that are writes (both trace generators).
constexpr double kWriteFraction = 0.25;
/// Salt for tag-derived write payloads (recomputable anywhere).
constexpr std::uint64_t kPayloadSalt = 0x77aa55;

std::vector<hw::Word> write_payload(std::uint64_t tag, unsigned lanes) {
  std::vector<hw::Word> p(lanes);
  for (unsigned l = 0; l < lanes; ++l) {
    p[l] = runtime::derive_seed(kPayloadSalt + tag, l);
  }
  return p;
}

core::PolyMemConfig pm_cfg() {
  core::PolyMemConfig c;
  c.scheme = maf::Scheme::kReRo;
  c.p = 2;
  c.q = 4;
  c.height = 32;
  c.width = 64;
  c.read_ports = 4;
  return c;
}

/// Zipf(s) sampler over ranks [0, n): rank r drawn with probability
/// proportional to 1/(r+1)^s, by inverse CDF.
class Zipf {
 public:
  Zipf(std::size_t n, double s) : cdf_(n) {
    double sum = 0;
    for (std::size_t r = 0; r < n; ++r) {
      sum += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }
  std::size_t operator()(Rng& rng) const {
    const auto it =
        std::lower_bound(cdf_.begin(), cdf_.end(), rng.uniform01());
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct TraceEntry {
  access::ParallelAccess where;
  service::Tenant tenant = 0;
  service::Op op = service::Op::kRead;
};

struct Trace {
  std::vector<TraceEntry> entries;
  /// Per-client [begin, end) into entries; clients submit their chunk
  /// in order, so per-port FIFO keeps each burst contiguous.
  std::vector<std::pair<std::size_t, std::size_t>> client_ranges;
  unsigned lanes = 0;  ///< payload width for write requests

  std::size_t reads() const {
    std::size_t n = 0;
    for (const auto& e : entries) n += e.op == service::Op::kRead;
    return n;
  }
  std::size_t writes() const { return entries.size() - reads(); }
};

/// Direct-mode trace: Zipf-popular column anchors, bursts walking
/// kBurstMin..kBurstMax consecutive rows (stride {1,0} — coalescible).
/// Read bursts draw from the shared top half of the space; write bursts
/// land in the client's private band of the bottom half, so reads stay
/// serial-oracle-checkable and the final image is order-independent
/// across clients.
Trace make_direct_trace(const core::PolyMemConfig& cfg, unsigned clients,
                        std::size_t per_client, std::uint64_t seed) {
  const auto lanes = static_cast<std::int64_t>(cfg.lanes());
  const Zipf zipf(static_cast<std::size_t>(cfg.width / lanes), kZipfSkew);
  const std::int64_t read_rows = cfg.height / 2;
  const std::int64_t band = (cfg.height - read_rows) / clients;
  Trace t;
  t.lanes = cfg.lanes();
  t.entries.reserve(clients * per_client);
  for (unsigned c = 0; c < clients; ++c) {
    Rng rng(runtime::derive_seed(seed, c));
    const std::size_t begin = t.entries.size();
    std::size_t quota = per_client;
    while (quota > 0) {
      const bool is_write = band > 0 && rng.uniform01() < kWriteFraction;
      const std::int64_t j0 = static_cast<std::int64_t>(zipf(rng)) * lanes;
      std::int64_t len = 0, i0 = 0;
      if (is_write) {
        len = std::min<std::int64_t>(static_cast<std::int64_t>(quota),
                                     rng.uniform(1, band));
        i0 = read_rows + c * band + rng.uniform(0, band - len);
      } else {
        len = std::min<std::int64_t>(
            static_cast<std::int64_t>(quota),
            rng.uniform(kBurstMin, std::min(kBurstMax, read_rows)));
        i0 = rng.uniform(0, read_rows - len);
      }
      const auto op = is_write ? service::Op::kWrite : service::Op::kRead;
      for (std::int64_t r = 0; r < len; ++r) {
        t.entries.push_back(
            {{access::PatternKind::kRow, {i0 + r, j0}}, c, op});
      }
      quota -= static_cast<std::size_t>(len);
    }
    t.client_ranges.emplace_back(begin, t.entries.size());
  }
  return t;
}

/// Sharded-mode trace in matrix coordinates: Zipf-popular tiles, bursts
/// confined to the anchor tile (the engine's coalescing unit). Reads
/// draw from the top half of the tile grid; each tenant's writes go to
/// one private tile in the bottom half.
Trace make_tiled_trace(std::int64_t rows, std::int64_t cols,
                       std::int64_t tile_rows, std::int64_t tile_cols,
                       std::int64_t lanes, unsigned clients,
                       std::size_t per_client, std::uint64_t seed) {
  const std::int64_t tiles_i = rows / tile_rows;
  const std::int64_t tiles_j = cols / tile_cols;
  const std::int64_t read_tiles_i = tiles_i / 2;
  const std::int64_t write_tiles =
      (tiles_i - read_tiles_i) * tiles_j;  // bottom half, tenant-private
  const Zipf zipf(static_cast<std::size_t>(read_tiles_i * tiles_j),
                  kZipfSkew);
  Trace t;
  t.lanes = static_cast<unsigned>(lanes);
  t.entries.reserve(clients * per_client);
  for (unsigned c = 0; c < clients; ++c) {
    Rng rng(runtime::derive_seed(seed, c));
    const std::size_t begin = t.entries.size();
    std::size_t quota = per_client;
    while (quota > 0) {
      const bool is_write =
          write_tiles >= clients && rng.uniform01() < kWriteFraction;
      std::int64_t ti = 0, tj = 0;
      if (is_write) {
        const std::int64_t mine = c % write_tiles;
        ti = read_tiles_i + mine / tiles_j;
        tj = mine % tiles_j;
      } else {
        const auto tile = static_cast<std::int64_t>(zipf(rng));
        ti = tile / tiles_j;
        tj = tile % tiles_j;
      }
      const auto len = std::min<std::int64_t>(
          static_cast<std::int64_t>(quota),
          rng.uniform(std::min<std::int64_t>(4, tile_rows), tile_rows));
      const std::int64_t i0 =
          ti * tile_rows + rng.uniform(0, tile_rows - len);
      const std::int64_t j0 =
          tj * tile_cols + rng.uniform(0, tile_cols / lanes - 1) * lanes;
      const auto op = is_write ? service::Op::kWrite : service::Op::kRead;
      for (std::int64_t r = 0; r < len; ++r) {
        t.entries.push_back(
            {{access::PatternKind::kRow, {i0 + r, j0}}, c, op});
      }
      quota -= static_cast<std::size_t>(len);
    }
    t.client_ranges.emplace_back(begin, t.entries.size());
  }
  return t;
}

constexpr std::size_t kQueueBound = 4096;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void fill_polymem(core::PolyMem& mem, std::uint64_t seed) {
  Rng rng(seed);
  for (std::int64_t i = 0; i < mem.config().height; ++i) {
    for (std::int64_t j = 0; j < mem.config().width; ++j) {
      mem.store({i, j}, static_cast<hw::Word>(rng.bits()));
    }
  }
}

void fill_lmem(maxsim::LMem& lmem, const maxsim::LMemMatrix& m,
               std::vector<hw::Word>* mirror, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<hw::Word> row(static_cast<std::size_t>(m.cols));
  for (std::int64_t i = 0; i < m.rows; ++i) {
    for (auto& w : row) w = rng.bits();
    lmem.write(m.word_addr(i, 0), row);
    if (mirror) mirror->insert(mirror->end(), row.begin(), row.end());
  }
}

/// Copies every completion into slot `tag`: data for the oracle,
/// modeled latency for the percentile summary. Slots are disjoint, so
/// concurrent drain threads (sharded mode) never race.
class SlotListener final : public service::CompletionListener {
 public:
  SlotListener(std::size_t requests, unsigned lanes)
      : lanes_(lanes),
        data_(requests * lanes),
        latency_(requests) {}

  void on_complete(const service::Completion& c) override {
    const auto slot = static_cast<std::size_t>(c.tag);
    latency_[slot] = c.complete_cycle - c.submit_cycle;
    if (c.status != service::Status::kOk) {
      not_ok_.fetch_add(1, std::memory_order_relaxed);
    } else if (c.op == service::Op::kRead) {
      std::copy(c.data.begin(), c.data.end(),
                data_.begin() + static_cast<std::ptrdiff_t>(slot * lanes_));
    }
    completed_.fetch_add(1, std::memory_order_release);
  }

  std::size_t completed() const {
    return completed_.load(std::memory_order_acquire);
  }
  std::uint64_t not_ok() const {
    return not_ok_.load(std::memory_order_relaxed);
  }
  const std::vector<hw::Word>& data() const { return data_; }
  const std::vector<std::uint64_t>& latency() const { return latency_; }

 private:
  unsigned lanes_;
  std::vector<hw::Word> data_;
  std::vector<std::uint64_t> latency_;
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::uint64_t> not_ok_{0};
};

struct SerialRun {
  double wall_s = 0;
  std::vector<hw::Word> data;  ///< the oracle's reference results
};

/// The baseline the service must beat: one synchronous read/write per
/// request, in trace order, on one thread. Read slots for write entries
/// stay zero on both sides of the oracle.
SerialRun run_serial(core::PolyMem& mem, const Trace& trace) {
  const unsigned lanes = mem.lanes();
  SerialRun r;
  r.data.resize(trace.entries.size() * lanes);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < trace.entries.size(); ++k) {
    const auto& e = trace.entries[k];
    if (e.op == service::Op::kWrite) {
      mem.write(e.where, write_payload(k, lanes));
    } else {
      mem.read_into(e.where, 0,
                    std::span<hw::Word>(r.data).subspan(k * lanes, lanes));
    }
  }
  r.wall_s = seconds_since(t0);
  return r;
}

/// Host image of the matrix after the trace's writes: the fill replayed
/// into an array, then every write applied in trace order. Write
/// regions are client-private and payloads are tag-derived, so whatever
/// cross-client interleave an engine picks converges to this image.
std::vector<hw::Word> expected_image(std::int64_t rows, std::int64_t cols,
                                     const Trace& trace, std::uint64_t seed,
                                     const std::vector<hw::Word>* fill) {
  std::vector<hw::Word> img;
  if (fill) {
    img = *fill;
  } else {
    img.resize(static_cast<std::size_t>(rows * cols));
    Rng rng(seed);
    for (auto& w : img) w = rng.bits();
  }
  for (std::size_t k = 0; k < trace.entries.size(); ++k) {
    const auto& e = trace.entries[k];
    if (e.op != service::Op::kWrite) continue;
    const auto payload = write_payload(k, trace.lanes);
    const auto base =
        static_cast<std::size_t>(e.where.anchor.i * cols + e.where.anchor.j);
    std::copy(payload.begin(), payload.end(),
              img.begin() + static_cast<std::ptrdiff_t>(base));
  }
  return img;
}

bool image_matches(const core::PolyMem& mem,
                   const std::vector<hw::Word>& img) {
  const auto& c = mem.config();
  for (std::int64_t i = 0; i < c.height; ++i) {
    for (std::int64_t j = 0; j < c.width; ++j) {
      if (mem.load({i, j}) != img[static_cast<std::size_t>(i * c.width + j)])
        return false;
    }
  }
  return true;
}

/// The saturated-drain phase: only the pump is timed, so drain_s is
/// pure service time regardless of how many cores the host has.
struct SatResult {
  double submit_s = 0;
  double drain_s = 0;
  service::EngineStats stats;
  bool verified = true;
};

struct LoadResult {
  double wall_s = 0;
  service::EngineStats stats;
  Reservoir::Summary latency;  ///< modeled cycles, submit -> complete
  std::uint64_t retries = 0;   ///< kOverloaded submissions retried
  bool verified = true;
  SatResult sat;  ///< the same trace replayed through a saturated drain
  std::size_t trace_reads = 0;   ///< run_sharded only (private trace)
  std::size_t trace_writes = 0;
};

service::Request make_request(const Trace& trace, std::size_t k,
                              service::CompletionListener& listener) {
  service::Request req;
  req.tenant = trace.entries[k].tenant;
  req.op = trace.entries[k].op;
  req.where = trace.entries[k].where;
  req.tag = k;
  if (req.op == service::Op::kWrite) {
    req.payload = write_payload(k, trace.lanes);
  }
  req.listener = &listener;
  return req;
}

/// Closed-loop clients: each thread submits its trace chunk in order,
/// spinning (yield) on kOverloaded — typed shedding, the client's
/// backpressure signal. `submit` maps (entry, tag) to a Status.
template <typename SubmitFn>
void drive_clients(const Trace& trace, SlotListener& listener,
                   std::atomic<std::uint64_t>& retries,
                   std::atomic<std::uint64_t>& failures, SubmitFn submit) {
  std::vector<std::thread> clients;
  clients.reserve(trace.client_ranges.size());
  for (std::size_t c = 0; c < trace.client_ranges.size(); ++c) {
    clients.emplace_back([&, c] {
      const auto [begin, end] = trace.client_ranges[c];
      std::uint64_t my_retries = 0;
      for (std::size_t k = begin; k < end; ++k) {
        service::Request req = make_request(trace, k, listener);
        service::Status s;
        while ((s = submit(c, k, std::move(req))) ==
               service::Status::kOverloaded) {
          // Back off with a real sleep, not a yield: on small hosts the
          // submitters and the drain share cores, and a yield carousel
          // starves the drain of exactly the time it needs to make room.
          ++my_retries;
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        if (s != service::Status::kAccepted)
          failures.fetch_add(1, std::memory_order_relaxed);
      }
      retries.fetch_add(my_retries, std::memory_order_relaxed);
    });
  }
  for (auto& t : clients) t.join();
}

/// Queues the whole trace wave by wave (each client submits until its
/// queue sheds, preserving per-client FIFO order), pumping `drain`
/// between waves; only the pump time accumulates into `sat.drain_s`.
/// `submit` maps (client, tag) to a Status; `drain` pumps to
/// quiescence.
template <typename SubmitFn, typename DrainFn>
void drive_saturated(const Trace& trace, SlotListener& listener,
                     SatResult& sat, SubmitFn submit, DrainFn drain) {
  std::vector<std::size_t> cursor(trace.client_ranges.size());
  for (std::size_t c = 0; c < cursor.size(); ++c)
    cursor[c] = trace.client_ranges[c].first;
  bool all_done = false;
  while (!all_done) {
    all_done = true;
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < cursor.size(); ++c) {
      const std::size_t end = trace.client_ranges[c].second;
      while (cursor[c] < end) {
        const service::Status s =
            submit(c, make_request(trace, cursor[c], listener));
        if (s == service::Status::kOverloaded) break;  // wave full: pump
        if (s != service::Status::kAccepted) {
          sat.verified = false;
          return;
        }
        ++cursor[c];
      }
      if (cursor[c] < end) all_done = false;
    }
    sat.submit_s += seconds_since(t0);
    t0 = std::chrono::steady_clock::now();
    drain();
    sat.drain_s += seconds_since(t0);
  }
}

Reservoir::Summary summarize_latency(const std::vector<std::uint64_t>& lat) {
  Reservoir res(4096, /*seed=*/11);
  for (const auto v : lat) res.add(static_cast<double>(v));
  return res.summary();
}

/// One direct-mode engine run over `trace`; completed reads verified
/// against the serial replay, the end-state matrix against the host
/// write image.
LoadResult run_engine(const Trace& trace, unsigned ports,
                      const std::vector<hw::Word>& reference,
                      const std::vector<hw::Word>& final_image,
                      std::uint64_t fill_seed) {
  core::PolyMem mem(pm_cfg());
  fill_polymem(mem, fill_seed);
  service::EngineOptions opt;
  opt.ports = ports;
  opt.queue_bound = kQueueBound;
  opt.max_coalesce = 64;
  service::ServiceEngine engine(mem, opt);
  runtime::ThreadPool drain(1);
  SlotListener listener(trace.entries.size(), mem.lanes());
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> failures{0};

  engine.start(drain);
  const auto t0 = std::chrono::steady_clock::now();
  drive_clients(trace, listener, retries, failures,
                [&](std::size_t client, std::size_t, service::Request&& req) {
                  const auto port = static_cast<unsigned>(client) % ports;
                  return engine.submit(port, std::move(req));
                });
  const std::size_t expected = trace.entries.size() - failures.load();
  while (listener.completed() < expected)
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  LoadResult r;
  r.wall_s = seconds_since(t0);
  engine.stop();
  r.stats = engine.stats();
  r.latency = summarize_latency(listener.latency());
  r.retries = retries.load();
  r.verified = failures.load() == 0 && listener.not_ok() == 0 &&
               listener.data() == reference && image_matches(mem, final_image);

  // Saturated-drain phase: a fresh engine (manual pumps, never started)
  // over a fresh memory, fed the same trace.
  core::PolyMem sat_mem(pm_cfg());
  fill_polymem(sat_mem, fill_seed);
  service::ServiceEngine sat_engine(sat_mem, opt);
  SlotListener sat_listener(trace.entries.size(), sat_mem.lanes());
  drive_saturated(
      trace, sat_listener, r.sat,
      [&](std::size_t client, service::Request&& req) {
        const auto port = static_cast<unsigned>(client) % ports;
        return sat_engine.submit(port, std::move(req));
      },
      [&] { sat_engine.run_until_idle(); });
  r.sat.stats = sat_engine.stats();
  r.sat.verified = r.sat.verified && sat_listener.not_ok() == 0 &&
                   sat_listener.completed() == trace.entries.size() &&
                   sat_listener.data() == reference &&
                   image_matches(sat_mem, final_image);
  return r;
}

bool lmem_matches(maxsim::LMem& lmem, const maxsim::LMemMatrix& m,
                  const std::vector<hw::Word>& mirror) {
  std::vector<hw::Word> row(static_cast<std::size_t>(m.cols));
  for (std::int64_t i = 0; i < m.rows; ++i) {
    lmem.read(m.word_addr(i, 0), row);
    if (!std::equal(row.begin(), row.end(),
                    mirror.begin() + static_cast<std::ptrdiff_t>(i * m.cols)))
      return false;
  }
  return true;
}

bool verify_against_mirror(const SlotListener& listener, const Trace& trace,
                           const std::vector<hw::Word>& mirror,
                           std::int64_t cols, std::int64_t lanes) {
  for (std::size_t k = 0; k < trace.entries.size(); ++k) {
    if (trace.entries[k].op != service::Op::kRead) continue;
    const auto anchor = trace.entries[k].where.anchor;
    for (std::int64_t l = 0; l < lanes; ++l) {
      const auto got =
          listener.data()[k * static_cast<std::size_t>(lanes) +
                          static_cast<std::size_t>(l)];
      const auto want =
          mirror[static_cast<std::size_t>(anchor.i * cols + anchor.j + l)];
      if (got != want) return false;
    }
  }
  return true;
}

/// The multi-tenant config: `shards` PolyMem+TileCache+drain instances
/// over one LMem-resident matrix, verified against the host mirror.
LoadResult run_sharded(const maxsim::LMemMatrix& shape, unsigned shards,
                       unsigned ports, unsigned clients,
                       std::size_t per_client, std::uint64_t seed) {
  maxsim::LMem lmem(64u << 20);
  std::vector<hw::Word> mirror;
  mirror.reserve(static_cast<std::size_t>(shape.rows * shape.cols));
  fill_lmem(lmem, shape, &mirror, seed);

  service::ShardedOptions sopt;
  sopt.shards = shards;
  sopt.engine.ports = ports;
  sopt.engine.queue_bound = kQueueBound;
  sopt.engine.max_coalesce = 64;
  sopt.shard_config = pm_cfg();
  service::ShardedService svc(lmem, shape, sopt);

  const auto lanes = static_cast<std::int64_t>(sopt.shard_config.lanes());
  const Trace trace =
      make_tiled_trace(shape.rows, shape.cols, svc.tile_rows(),
                       svc.tile_cols(), lanes, clients, per_client, seed + 1);
  // Fold the trace's writes into the mirror: reads never touch the
  // write tiles, so one image serves both the read oracle and the
  // end-state LMem check.
  mirror = expected_image(shape.rows, shape.cols, trace, seed, &mirror);
  runtime::ThreadPool pool(shards);
  SlotListener listener(trace.entries.size(),
                        static_cast<unsigned>(lanes));
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> failures{0};

  svc.start(pool);
  const auto t0 = std::chrono::steady_clock::now();
  drive_clients(trace, listener, retries, failures,
                [&](std::size_t, std::size_t, service::Request&& req) {
                  return svc.submit(std::move(req));
                });
  const std::size_t expected = trace.entries.size() - failures.load();
  while (listener.completed() < expected)
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  LoadResult r;
  r.wall_s = seconds_since(t0);
  svc.stop();
  svc.flush();  // publish dirty write tiles so the LMem check sees them
  r.stats = svc.stats();
  r.latency = summarize_latency(listener.latency());
  r.retries = retries.load();
  r.trace_reads = trace.reads();
  r.trace_writes = trace.writes();
  r.verified = failures.load() == 0 && listener.not_ok() == 0 &&
               verify_against_mirror(listener, trace, mirror, shape.cols,
                                     lanes) &&
               lmem_matches(lmem, shape, mirror);

  // Saturated-drain phase: a second (never-started) service over the
  // same LMem matrix, every shard pumped from the caller's thread.
  service::ShardedService sat_svc(lmem, shape, sopt);
  SlotListener sat_listener(trace.entries.size(),
                            static_cast<unsigned>(lanes));
  drive_saturated(
      trace, sat_listener, r.sat,
      [&](std::size_t, service::Request&& req) {
        return sat_svc.submit(std::move(req));
      },
      [&] {
        for (bool any = true; any;) {
          any = false;
          for (unsigned s = 0; s < sat_svc.shards(); ++s)
            while (sat_svc.engine(s).drain_once()) any = true;
        }
      });
  r.sat.stats = sat_svc.stats();
  sat_svc.flush();
  r.sat.verified = r.sat.verified && sat_listener.not_ok() == 0 &&
                   sat_listener.completed() == trace.entries.size() &&
                   verify_against_mirror(sat_listener, trace, mirror,
                                         shape.cols, lanes) &&
                   lmem_matches(lmem, shape, mirror);
  return r;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

void emit_config(std::ostream& out, const std::string& name,
                 std::size_t requests, unsigned ports, unsigned shards,
                 const LoadResult& r, bool last) {
  const double n = static_cast<double>(requests);
  out << "    {\"name\": \"" << name << "\", \"verified\": "
      << (r.verified ? "true" : "false") << ", \"ports\": " << ports
      << ", \"shard_count\": " << shards << ",\n"
      << "     \"requests\": " << requests
      << ", \"wall_ms\": " << fmt(r.wall_s * 1e3)
      << ", \"accesses_per_sec\": " << fmt(n / r.wall_s)
      << ", \"ns_per_access\": " << fmt(r.wall_s * 1e9 / n) << ",\n"
      << "     \"latency_cycles\": {\"p50\": " << fmt(r.latency.p50)
      << ", \"p95\": " << fmt(r.latency.p95)
      << ", \"p99\": " << fmt(r.latency.p99)
      << ", \"max\": " << fmt(r.latency.max) << "},\n"
      << "     \"mean_run_length\": " << fmt(r.stats.mean_run_length())
      << ", \"compiled_share\": "
      << fmt(r.stats.drained_requests == 0
                 ? 0.0
                 : static_cast<double>(r.stats.compiled_requests) /
                       static_cast<double>(r.stats.drained_requests))
      << ", \"shed\": " << r.stats.shed << ", \"retries\": " << r.retries
      << ",\n     \"max_queue_depth\": " << r.stats.max_queue_depth
      << ", \"max_in_flight\": " << r.stats.max_in_flight
      << ", \"tile_misses\": " << r.stats.tile_misses
      << ", \"modeled_cycles\": " << r.stats.cycles << ",\n";
  if (r.trace_reads + r.trace_writes > 0) {
    out << "     \"trace_reads\": " << r.trace_reads
        << ", \"trace_writes\": " << r.trace_writes << ",\n";
  }
  out << "     \"saturated_drain\": {\"verified\": "
      << (r.sat.verified ? "true" : "false")
      << ", \"drain_ms\": " << fmt(r.sat.drain_s * 1e3)
      << ", \"accesses_per_sec\": " << fmt(n / r.sat.drain_s)
      << ", \"ns_per_access\": " << fmt(r.sat.drain_s * 1e9 / n)
      << ", \"mean_run_length\": " << fmt(r.sat.stats.mean_run_length())
      << "}}" << (last ? "\n" : ",\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  std::string out_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiny")
      tiny = true;
    else
      out_path = arg;
  }

  const auto cfg = pm_cfg();
  const unsigned kClients = 4;
  const std::size_t per_client = tiny ? 2'000 : 100'000;
  const unsigned kTenants = 6;
  const std::size_t per_tenant = tiny ? 1'000 : 30'000;
  constexpr std::uint64_t kSeed = 2026;

  const Trace trace = make_direct_trace(cfg, kClients, per_client, kSeed);
  const std::size_t n = trace.entries.size();

  // Serial baseline doubles as the differential oracle's reference —
  // for the completed reads and, via the host write image, for the
  // end-state matrix.
  core::PolyMem serial_mem(pm_cfg());
  fill_polymem(serial_mem, kSeed);
  const SerialRun serial = run_serial(serial_mem, trace);
  const std::vector<hw::Word> final_image =
      expected_image(cfg.height, cfg.width, trace, kSeed, nullptr);

  const LoadResult one_port =
      run_engine(trace, 1, serial.data, final_image, kSeed);
  const LoadResult multi_port =
      run_engine(trace, kClients, serial.data, final_image, kSeed);

  const maxsim::LMemMatrix matrix{0, 256, 256, 256};
  const LoadResult sharded =
      run_sharded(matrix, 4, 2, kTenants, per_tenant, kSeed);
  const std::size_t sharded_n = kTenants * per_tenant;

  const double serial_rate = static_cast<double>(n) / serial.wall_s;
  const double multi_rate = static_cast<double>(n) / multi_port.wall_s;
  const double sat_multi_rate =
      static_cast<double>(n) / multi_port.sat.drain_s;

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"benchmark\": \"polymem_service\",\n"
      << "  \"tiny\": " << (tiny ? "true" : "false") << ",\n"
      << "  \"geometry\": {\"scheme\": \"ReRo\", \"p\": " << cfg.p
      << ", \"q\": " << cfg.q << ", \"height\": " << cfg.height
      << ", \"width\": " << cfg.width << ", \"lanes\": " << cfg.lanes()
      << ", \"read_ports\": " << cfg.read_ports << "},\n"
      << "  \"trace\": {\"requests\": " << n << ", \"clients\": " << kClients
      << ", \"reads\": " << trace.reads() << ", \"writes\": " << trace.writes()
      << ", \"write_burst_fraction\": " << fmt(kWriteFraction)
      << ", \"burst_rows\": \"" << kBurstMin << ".." << kBurstMax
      << "\", \"zipf_skew\": " << fmt(kZipfSkew) << "},\n"
      << "  \"serial_baseline\": {\"requests\": " << n
      << ", \"wall_ms\": " << fmt(serial.wall_s * 1e3)
      << ", \"accesses_per_sec\": " << fmt(serial_rate)
      << ", \"ns_per_access\": " << fmt(serial.wall_s * 1e9 /
                                        static_cast<double>(n))
      << "},\n"
      << "  \"configs\": [\n";
  emit_config(out, "engine_1port", n, 1, 1, one_port, false);
  emit_config(out, "engine_multiport", n, kClients, 1, multi_port, false);
  emit_config(out, "sharded_multitenant", sharded_n, 2, 4, sharded, true);
  out << "  ],\n"
      << "  \"multiport_closed_loop_speedup_vs_serial\": "
      << fmt(multi_rate / serial_rate) << ",\n"
      << "  \"multiport_saturated_drain_speedup_vs_serial\": "
      << fmt(sat_multi_rate / serial_rate) << "\n}\n";
  out.close();

  std::cout << "serial:    " << fmt(serial_rate / 1e6) << " M acc/s\n"
            << "1 port:    "
            << fmt(static_cast<double>(n) / one_port.wall_s / 1e6)
            << " M acc/s, run length " << fmt(one_port.stats.mean_run_length())
            << ", p99 " << fmt(one_port.latency.p99) << " cy\n"
            << "multiport: " << fmt(multi_rate / 1e6) << " M acc/s, run length "
            << fmt(multi_port.stats.mean_run_length()) << ", p99 "
            << fmt(multi_port.latency.p99) << " cy\n"
            << "multiport saturated drain: " << fmt(sat_multi_rate / 1e6)
            << " M acc/s (" << fmt(sat_multi_rate / serial_rate)
            << "x serial)\n"
            << "sharded:   "
            << fmt(static_cast<double>(sharded_n) / sharded.wall_s / 1e6)
            << " M acc/s over 4 shards, " << sharded.stats.tile_misses
            << " tile misses, p99 " << fmt(sharded.latency.p99) << " cy\n"
            << "wrote " << out_path << "\n";

  if (!one_port.verified || !multi_port.verified || !sharded.verified ||
      !one_port.sat.verified || !multi_port.sat.verified ||
      !sharded.sat.verified) {
    std::cerr << "FAIL: completed data diverges from the serial replay\n";
    return 1;
  }
  if (multi_port.stats.mean_run_length() <= 1.0) {
    std::cerr << "FAIL: multi-port drain never coalesced\n";
    return 1;
  }
  if (!tiny && sat_multi_rate <= serial_rate) {
    std::cerr << "FAIL: saturated coalesced multi-port drain ("
              << fmt(sat_multi_rate / 1e6)
              << " M acc/s) did not beat serial one-call-per-request ("
              << fmt(serial_rate / 1e6) << " M acc/s)\n";
    return 1;
  }
  return 0;
}
