// Adaptive layout engine benchmark; emits BENCH_adaptive.json (committed
// at the repo root).
//
// Drives the phase-changing golden trace (tests/data/
// phase_change_64x64.trace: row scans -> column scans -> main-diagonal
// sweeps, ~25% writes) through six engines built on the same serve path:
// the five static schemes (AdaptiveMatrix with adapt=false — identical
// batched/fallback dispatch, no profiling) and the adaptive engine
// (profiler + policy + live copy-forward migration on a background
// worker). No static scheme serves all three phases at 2x4 — rows need
// {ReRo, RoCo}, columns {ReCo, RoCo}, main diagonals {ReRo, ReCo} — so
// the only way to win end-to-end is to migrate mid-run, which is exactly
// what the bench measures.
//
// Two comparisons, one gate each:
//  - *modeled cycles* (deterministic): batched access = 1 cycle,
//    fallback = lanes cycles (p*q scalar bank reads), plus the policy's
//    own migration charge (2 * cells / lanes cycles per migration).
//  - *wall clock* (end-to-end, non-tiny only): the same op stream timed
//    through each engine.
//
// Correctness is not sampled, it is exhaustive: an untimed replay pass
// (src/replay, adaptive mode, inline migrations) diffs the migrating
// engine word-for-word against the host oracle from every starting
// scheme, and the timed adaptive run must finish with zero differential-
// oracle mismatches and zero aborted migrations. Any divergence, or an
// adaptive loss on a gate, exits nonzero so CI can gate on --tiny.
//
// Usage: bench_adaptive [--tiny] [--trace file] [--passes N] [out.json]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "adapt/adaptive_matrix.hpp"
#include "replay/replay.hpp"
#include "runtime/thread_pool.hpp"
#include "sched/trace_io.hpp"

#ifndef POLYMEM_PHASE_TRACE
#define POLYMEM_PHASE_TRACE "tests/data/phase_change_64x64.trace"
#endif

namespace {

using namespace polymem;

constexpr std::int64_t kWindow = 256;

core::PolyMemConfig base_config(const sched::RecordedTrace& trace,
                                maf::Scheme scheme) {
  core::PolyMemConfig cfg;
  cfg.scheme = scheme;
  cfg.p = trace.p;
  cfg.q = trace.q;
  cfg.height = trace.height;
  cfg.width = trace.width;
  return cfg;
}

struct RunResult {
  std::string name;
  double wall_ms = 0;
  std::uint64_t modeled_cycles = 0;
  std::uint64_t batched = 0;
  std::uint64_t fallback = 0;
  std::uint64_t migrations = 0;
  std::uint64_t aborted = 0;
  std::uint64_t mismatched_words = 0;
  std::uint64_t forwarded_words = 0;
  maf::Scheme final_scheme = maf::Scheme::kReO;
};

/// Streams the trace `passes` times through one engine and reads the
/// meters. Data correctness is the replay pass's job; here writes carry a
/// constant payload and reads land in scratch — pure serve-path timing.
RunResult run_engine(const sched::RecordedTrace& trace, maf::Scheme start,
                     bool adaptive, int passes, runtime::ThreadPool* pool) {
  adapt::AdaptiveOptions opts;
  opts.adapt = adaptive;
  opts.verify_migrations = true;
  opts.profiler.window = kWindow;
  opts.pool = pool;

  adapt::AdaptiveMatrix mat(base_config(trace, start), opts);
  const unsigned lanes = mat.lanes();
  std::vector<core::Word> in(64 * static_cast<std::size_t>(lanes), 0x5eed);
  std::vector<core::Word> out;

  const auto t0 = std::chrono::steady_clock::now();
  for (int pass = 0; pass < passes; ++pass) {
    for (const sched::TraceOp& op : trace.ops) {
      const core::AccessBatch batch = op.batch();
      const std::size_t words =
          static_cast<std::size_t>(batch.count()) * lanes;
      if (op.dir == sched::TraceOp::Dir::kRead) {
        if (out.size() < words) out.resize(words);
        mat.read_batch(batch, std::span(out).first(words));
      } else {
        if (in.size() < words) in.resize(words, 0x5eed);
        mat.write_batch(batch, std::span(std::as_const(in)).first(words));
      }
    }
  }
  mat.wait_idle();
  const auto t1 = std::chrono::steady_clock::now();

  const adapt::AdaptiveStats stats = mat.stats();
  RunResult r;
  r.name = adaptive ? "adaptive"
                    : std::string("static-") + maf::scheme_name(start);
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.batched = stats.batched_accesses;
  r.fallback = stats.fallback_accesses;
  r.migrations = stats.migrations_completed;
  r.aborted = stats.migrations_aborted;
  r.mismatched_words = stats.mismatched_words;
  r.forwarded_words = stats.forwarded_words;
  r.final_scheme = stats.scheme;
  const std::uint64_t cells = static_cast<std::uint64_t>(
      base_config(trace, start).height * base_config(trace, start).width);
  r.modeled_cycles = r.batched + r.fallback * lanes +
                     r.migrations * (2 * cells / lanes);
  return r;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  std::string trace_path = POLYMEM_PHASE_TRACE;
  std::string out_path = "BENCH_adaptive.json";
  int passes = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiny") {
      tiny = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--passes" && i + 1 < argc) {
      passes = std::atoi(argv[++i]);
    } else {
      out_path = arg;
    }
  }
  if (passes <= 0) passes = tiny ? 1 : 8;

  sched::RecordedTrace trace;
  try {
    trace = sched::parse_trace_file(trace_path);
  } catch (const std::exception& e) {
    std::cerr << "bench_adaptive: " << e.what() << "\n";
    return 1;
  }

  // Untimed correctness pass: the replay harness diffs the migrating
  // engine against the host oracle from every starting scheme (inline
  // migrations, each verified band-by-band before its epoch flip).
  bool replay_ok = true;
  std::int64_t replay_migrations = 0;
  for (maf::Scheme scheme : maf::kAllSchemes) {
    replay::ReplayOptions ropts;
    ropts.scheme = scheme;
    ropts.adaptive = true;
    ropts.adaptive_window = kWindow;
    const replay::ReplayReport rep = replay::replay(trace, ropts);
    replay_ok = replay_ok && rep.verified();
    replay_migrations += rep.migrations;
    if (!rep.verified()) {
      std::cerr << "FAIL replay from " << maf::scheme_name(scheme) << ": "
                << rep.summary() << "\n";
    }
  }

  // Timed passes: five statics, then the adaptive engine with a
  // background migration worker.
  std::vector<RunResult> runs;
  for (maf::Scheme scheme : maf::kAllSchemes) {
    runs.push_back(run_engine(trace, scheme, /*adaptive=*/false, passes,
                              /*pool=*/nullptr));
  }
  runtime::ThreadPool pool(1);
  runs.push_back(run_engine(trace, maf::Scheme::kReO, /*adaptive=*/true,
                            passes, &pool));
  const RunResult& adaptive = runs.back();

  bool beats_cycles = true;
  bool beats_wall = true;
  for (std::size_t k = 0; k + 1 < runs.size(); ++k) {
    beats_cycles = beats_cycles && adaptive.modeled_cycles < runs[k].modeled_cycles;
    beats_wall = beats_wall && adaptive.wall_ms < runs[k].wall_ms;
  }
  const bool migrations_clean =
      adaptive.mismatched_words == 0 && adaptive.aborted == 0 &&
      adaptive.migrations > 0;

  std::ofstream out(out_path);
  out << "{\n"
      << "  \"benchmark\": \"polymem_adaptive_layout\",\n"
      << "  \"tiny\": " << (tiny ? "true" : "false") << ",\n"
      << "  \"geometry\": {\"p\": " << trace.p << ", \"q\": " << trace.q
      << ", \"height\": " << trace.height << ", \"width\": " << trace.width
      << ", \"window\": " << kWindow << "},\n"
      << "  \"trace\": {\"ops\": " << trace.ops.size()
      << ", \"accesses\": " << trace.accesses()
      << ", \"passes\": " << passes
      << ", \"phases\": [\"row\", \"col\", \"mdiag\"]},\n"
      << "  \"replay_verification\": {\"all_schemes_verified\": "
      << (replay_ok ? "true" : "false")
      << ", \"migrations\": " << replay_migrations << "},\n"
      << "  \"runs\": [\n";
  for (std::size_t k = 0; k < runs.size(); ++k) {
    const RunResult& r = runs[k];
    out << "    {\"config\": \"" << r.name << "\", \"wall_ms\": "
        << fmt(r.wall_ms) << ", \"modeled_cycles\": " << r.modeled_cycles
        << ", \"batched\": " << r.batched << ", \"fallback\": " << r.fallback
        << ",\n     \"migrations\": " << r.migrations
        << ", \"aborted\": " << r.aborted
        << ", \"mismatched_words\": " << r.mismatched_words
        << ", \"forwarded_words\": " << r.forwarded_words
        << ", \"final_scheme\": \"" << maf::scheme_name(r.final_scheme)
        << "\"}" << (k + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"gates\": {\"adaptive_beats_all_static_cycles\": "
      << (beats_cycles ? "true" : "false")
      << ", \"adaptive_beats_all_static_wall\": "
      << (beats_wall ? "true" : "false")
      << ", \"migrations_verified_clean\": "
      << (migrations_clean ? "true" : "false") << "}\n"
      << "}\n";
  out.close();

  for (const RunResult& r : runs) {
    std::cout << r.name << ": " << fmt(r.wall_ms) << " ms, "
              << r.modeled_cycles << " cycles (" << r.batched << " batched, "
              << r.fallback << " fallback), " << r.migrations
              << " migrations -> " << maf::scheme_name(r.final_scheme)
              << "\n";
  }
  std::cout << "wrote " << out_path << "\n";

  if (!replay_ok) {
    std::cerr << "FAIL: adaptive replay diverged from the host oracle\n";
    return 1;
  }
  if (!migrations_clean) {
    std::cerr << "FAIL: migration aborted or differential oracle mismatch\n";
    return 1;
  }
  if (!beats_cycles) {
    std::cerr << "FAIL: adaptive lost to a static scheme on modeled cycles\n";
    return 1;
  }
  if (!tiny && !beats_wall) {
    std::cerr << "FAIL: adaptive lost to a static scheme on wall clock\n";
    return 1;
  }
  return 0;
}
