// Reproduces paper Fig. 6: logic utilisation (%) across the DSE grid,
// plus the Sec. IV-C text anchors.
#include <iostream>

#include "dse/report.hpp"

int main() {
  using namespace polymem;
  const dse::DseExplorer explorer;
  const auto results = explorer.explore();
  std::cout << dse::fig6_logic_utilisation(results) << "\n";

  auto logic = [&](maf::Scheme s, unsigned kb, unsigned l, unsigned p) {
    return explorer.evaluate({s, kb, l, p}).resources.logic_pct;
  };
  std::cout << "Sec. IV-C anchors (paper -> model):\n"
            << "  512KB ReO  8L 1P : 10.58% -> "
            << TextTable::num(logic(maf::Scheme::kReO, 512, 8, 1), 2) << "%\n"
            << "  4MB  RoCo  8L 1P : 13.05% -> "
            << TextTable::num(logic(maf::Scheme::kRoCo, 4096, 8, 1), 2)
            << "%\n"
            << "  512KB ReRo 8L 1P : 10.78% -> "
            << TextTable::num(logic(maf::Scheme::kReRo, 512, 8, 1), 2)
            << "%\n"
            << "  512KB ReRo 8L 4P : 22.34% -> "
            << TextTable::num(logic(maf::Scheme::kReRo, 512, 8, 4), 2)
            << "%\n"
            << "  512KB ReRo 16L 1P: 23.73% -> "
            << TextTable::num(logic(maf::Scheme::kReRo, 512, 16, 1), 2)
            << "%  (supra-linear in lanes)\n";
  return 0;
}
