// EXTENSION: lane scaling beyond the paper's synthesised grid.
//
// The paper's contribution list claims DSE scaling "with the number of
// lanes (up to 32)" but Table III/IV only synthesise 8 and 16. This bench
// extends the calibrated models to 32 lanes (2x16 and 4x8 bank grids) —
// pure prediction, clearly marked as such — and contrasts the two
// 32-lane geometries' pattern support, which the lane count alone hides.
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "maf/conflict.hpp"
#include "synth/fmax_model.hpp"
#include "synth/resource_model.hpp"

int main() {
  using namespace polymem;
  const auto& fmax = synth::FmaxModel::paper_calibrated();
  const synth::ResourceModel resources;

  TextTable table("Extension: lane scaling prediction (ReRo, 1 read port)");
  table.set_header({"Size", "Geometry", "Lanes", "model MHz", "write GB/s",
                    "logic %", "LUT %", "BRAM %", "fits"});
  for (unsigned size_kb : {512u, 1024u, 2048u, 4096u}) {
    for (auto [p, q] : {std::pair<unsigned, unsigned>{2, 4}, {2, 8}, {2, 16},
                        {4, 8}}) {
      const auto cfg = core::PolyMemConfig::with_capacity(
          static_cast<std::uint64_t>(size_kb) * KiB, maf::Scheme::kReRo, p,
          q);
      const double mhz = fmax.fmax_mhz(cfg);
      const auto est = resources.estimate(cfg);
      table.add_row(
          {format_capacity(size_kb * KiB),
           std::to_string(p) + "x" + std::to_string(q),
           TextTable::num(static_cast<int>(p * q)), TextTable::num(mhz, 0),
           TextTable::num(bandwidth_bytes_per_s(p * q, 64, mhz * 1e6) / GB,
                          2),
           TextTable::num(est.logic_pct, 1), TextTable::num(est.lut_pct, 1),
           TextTable::num(est.bram_pct, 1), est.fits() ? "yes" : "NO"});
    }
  }
  std::cout << table << "\n";

  // The two 32-lane geometries are NOT equivalent: pattern support under
  // the multiview schemes depends on the bank-grid shape.
  TextTable support("32-lane geometry ablation: machine-checked support");
  support.set_header({"Scheme", "Pattern", "2x16", "4x8"});
  for (maf::Scheme scheme : maf::kAllSchemes) {
    const maf::Maf wide(scheme, 2, 16);
    const maf::Maf square(scheme, 4, 8);
    for (access::PatternKind kind : access::kAllPatterns) {
      const auto a = maf::probe_support(wide, kind);
      const auto b = maf::probe_support(square, kind);
      if (a == maf::SupportLevel::kNone && b == maf::SupportLevel::kNone)
        continue;
      support.add_row({maf::scheme_name(scheme), access::pattern_name(kind),
                       maf::support_level_name(a),
                       maf::support_level_name(b)});
    }
  }
  std::cout << support
            << "  (identical families here; the shapes differ: a 2x16 rect "
               "is 2 rows of 16,\n   a 4x8 rect is 4 rows of 8 — the "
               "application's tile shape picks the grid)\n";
  return 0;
}
