// Reproduces paper Table III: the DSE parameter grid and its validity
// rule, listing every synthesisable design point with its derived
// characteristics (the configuration summary of Sec. IV-A), and times the
// validated sweep serially vs on the parallel runtime (pass a thread
// count as argv[1]; default: the host's hardware concurrency).
#include <chrono>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "dse/explorer.hpp"
#include "runtime/thread_pool.hpp"
#include "synth/fmax_model.hpp"

int main(int argc, char** argv) {
  using namespace polymem;

  std::cout << "Table III: DSE parameters\n"
            << "  Total size [KB]      : 512, 1024, 2048, 4096\n"
            << "  Number of lanes (pxq): 8 (2x4), 16 (2x8)\n"
            << "  Number of read ports : 1, 2, 3, 4\n"
            << "  validity             : size x ports <= 4MB of BRAM;\n"
            << "                         16-lane designs route <= 2 ports\n\n";

  TextTable table("Valid design points (18 columns x 5 schemes = 90)");
  table.set_header({"Size", "Lanes", "Ports", "phys. data", "banks",
                    "words/bank", "space HxW", "model MHz (ReRo)"});
  const dse::DseExplorer explorer;
  int valid = 0, invalid = 0;
  for (unsigned size : {512u, 1024u, 2048u, 4096u}) {
    for (unsigned lanes : {8u, 16u}) {
      for (unsigned ports = 1; ports <= 4; ++ports) {
        if (!synth::dse_point_valid(size, lanes, ports)) {
          ++invalid;
          continue;
        }
        ++valid;
        const synth::DsePoint point{maf::Scheme::kReRo, size, lanes, ports};
        const auto cfg = synth::FmaxModel::make_config(point);
        const auto r = explorer.evaluate(point);
        table.add_row(
            {format_capacity(size * KiB), TextTable::num(static_cast<int>(lanes)),
             TextTable::num(static_cast<int>(ports)),
             format_capacity(cfg.physical_bytes()),
             TextTable::num(static_cast<int>(cfg.lanes())),
             TextTable::num(static_cast<std::uint64_t>(cfg.words_per_bank())),
             std::to_string(cfg.height) + "x" + std::to_string(cfg.width),
             TextTable::num(r.fmax_mhz, 0)});
      }
    }
  }
  std::cout << table << "\n";
  std::cout << "valid (size, lanes, ports) columns: " << valid
            << "  rejected: " << invalid << "\n\n";

  // Which configurations are actually worth choosing: the Pareto frontier
  // of aggregated read bandwidth vs BRAM cost.
  TextTable pareto("Pareto frontier: read bandwidth vs BRAM blocks (model)");
  pareto.set_header({"Size", "Lanes", "Ports", "Scheme", "read GB/s",
                     "BRAM36", "BRAM %"});
  for (const auto& r : explorer.pareto_read_bw_vs_bram()) {
    pareto.add_row({format_capacity(r.point.size_kb * KiB),
                    TextTable::num(static_cast<int>(r.point.lanes)),
                    TextTable::num(static_cast<int>(r.point.ports)),
                    maf::scheme_name(r.point.scheme),
                    TextTable::num(r.read_bw_bytes_per_s / GB, 2),
                    TextTable::num(r.resources.bram36),
                    TextTable::num(r.resources.bram_pct, 1)});
  }
  std::cout << pareto << "\n";

  // Threaded variant: the full 90-point sweep with the paper's functional
  // validation cycle per point, serial vs the parallel runtime.
  const unsigned threads =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1]))
               : polymem::runtime::ThreadPool::hardware_threads();
  using Clock = std::chrono::steady_clock;
  auto wall_ms = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  const auto t0 = Clock::now();
  const auto serial = explorer.sweep({.threads = 1, .validate = true});
  const auto t1 = Clock::now();
  const auto parallel = explorer.sweep({.threads = threads, .validate = true});
  const auto t2 = Clock::now();
  bool identical = serial.size() == parallel.size();
  bool all_ok = true;
  for (std::size_t k = 0; identical && k < serial.size(); ++k) {
    identical = serial[k].validation_checksum == parallel[k].validation_checksum;
    all_ok = all_ok && parallel[k].validation_ok;
  }
  std::cout << "Validated sweep (90 points): serial " << wall_ms(t0, t1)
            << " ms, " << threads << " threads " << wall_ms(t1, t2)
            << " ms (speedup " << wall_ms(t0, t1) / wall_ms(t1, t2)
            << "x), checksums " << (identical ? "identical" : "DIVERGED")
            << ", validation " << (all_ok ? "ok" : "FAILED") << "\n";

  return valid == 18 && identical && all_ok ? 0 : 1;
}
