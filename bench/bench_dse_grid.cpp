// Reproduces paper Table III: the DSE parameter grid and its validity
// rule, listing every synthesisable design point with its derived
// characteristics (the configuration summary of Sec. IV-A).
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "dse/explorer.hpp"
#include "synth/fmax_model.hpp"

int main() {
  using namespace polymem;

  std::cout << "Table III: DSE parameters\n"
            << "  Total size [KB]      : 512, 1024, 2048, 4096\n"
            << "  Number of lanes (pxq): 8 (2x4), 16 (2x8)\n"
            << "  Number of read ports : 1, 2, 3, 4\n"
            << "  validity             : size x ports <= 4MB of BRAM;\n"
            << "                         16-lane designs route <= 2 ports\n\n";

  TextTable table("Valid design points (18 columns x 5 schemes = 90)");
  table.set_header({"Size", "Lanes", "Ports", "phys. data", "banks",
                    "words/bank", "space HxW", "model MHz (ReRo)"});
  const dse::DseExplorer explorer;
  int valid = 0, invalid = 0;
  for (unsigned size : {512u, 1024u, 2048u, 4096u}) {
    for (unsigned lanes : {8u, 16u}) {
      for (unsigned ports = 1; ports <= 4; ++ports) {
        if (!synth::dse_point_valid(size, lanes, ports)) {
          ++invalid;
          continue;
        }
        ++valid;
        const synth::DsePoint point{maf::Scheme::kReRo, size, lanes, ports};
        const auto cfg = synth::FmaxModel::make_config(point);
        const auto r = explorer.evaluate(point);
        table.add_row(
            {format_capacity(size * KiB), TextTable::num(static_cast<int>(lanes)),
             TextTable::num(static_cast<int>(ports)),
             format_capacity(cfg.physical_bytes()),
             TextTable::num(static_cast<int>(cfg.lanes())),
             TextTable::num(static_cast<std::uint64_t>(cfg.words_per_bank())),
             std::to_string(cfg.height) + "x" + std::to_string(cfg.width),
             TextTable::num(r.fmax_mhz, 0)});
      }
    }
  }
  std::cout << table << "\n";
  std::cout << "valid (size, lanes, ports) columns: " << valid
            << "  rejected: " << invalid << "\n\n";

  // Which configurations are actually worth choosing: the Pareto frontier
  // of aggregated read bandwidth vs BRAM cost.
  TextTable pareto("Pareto frontier: read bandwidth vs BRAM blocks (model)");
  pareto.set_header({"Size", "Lanes", "Ports", "Scheme", "read GB/s",
                     "BRAM36", "BRAM %"});
  for (const auto& r : explorer.pareto_read_bw_vs_bram()) {
    pareto.add_row({format_capacity(r.point.size_kb * KiB),
                    TextTable::num(static_cast<int>(r.point.lanes)),
                    TextTable::num(static_cast<int>(r.point.ports)),
                    maf::scheme_name(r.point.scheme),
                    TextTable::num(r.read_bw_bytes_per_s / GB, 2),
                    TextTable::num(r.resources.bram36),
                    TextTable::num(r.resources.bram_pct, 1)});
  }
  std::cout << pareto;
  return valid == 18 ? 0 : 1;
}
