// Reproduces paper Fig. 5: aggregated read bandwidth (GB/s) across the
// DSE grid, including the port-scaling observations of Sec. IV-B.
#include <iostream>

#include "common/units.hpp"
#include "dse/report.hpp"

int main() {
  using namespace polymem;
  const dse::DseExplorer explorer;
  const auto results = explorer.explore();
  std::cout << dse::fig5_read_bandwidth(results) << "\n";
  std::cout << dse::figure_series(
                   results, "Fig. 5 reference (paper Table IV frequencies)",
                   [](const dse::DseResult& r) {
                     return *r.read_bw_paper / GB;
                   })
            << "\n";

  const auto best = explorer.best_read_bandwidth();
  std::cout << "Peak aggregated read bandwidth (model): "
            << format_bandwidth(best.read_bw_bytes_per_s, true) << " at "
            << best.point.size_kb << "KB, " << best.point.lanes << " lanes, "
            << best.point.ports << " ports, "
            << maf::scheme_name(best.point.scheme) << "\n"
            << "Paper: 'The peak bandwidth is 32GB/s achieved by the 512KB, "
               "8-lane, 4-port ReTr scheme.'\n\n";

  // Port scaling at 512KB / 8 lanes (ReRo): 1->2 scales well, 3-4 show
  // diminishing returns (Sec. IV-B).
  std::cout << "Port scaling, 512KB 8-lane ReRo (paper-derived):\n";
  double prev = 0;
  for (unsigned ports = 1; ports <= 4; ++ports) {
    const auto r = explorer.evaluate({maf::Scheme::kReRo, 512, 8, ports});
    std::cout << "  " << ports << " port(s): "
              << format_bandwidth(*r.read_bw_paper, true);
    if (prev > 0)
      std::cout << "  (x" << TextTable::num(*r.read_bw_paper / prev, 2)
                << " vs previous)";
    prev = *r.read_bw_paper;
    std::cout << "\n";
  }
  return 0;
}
