// Reproduces paper Fig. 10: STREAM-Copy aggregated (read+write) bandwidth
// versus copied data size, measured on the cycle-accurate simulator.
//
// The paper's curve rises steeply while the ~300ns host-call overhead is
// comparable to the runtime, then saturates above 15 GB/s; the maximum
// measured value was 15301 MB/s, > 99% of the 2 x 8 x 8B x 120MHz =
// 15360 MB/s theoretical peak.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/table.hpp"
#include "stream/host.hpp"

int main() {
  using namespace polymem;
  stream::StreamHost host;  // the paper's full-size design
  const std::int64_t capacity = host.design().config().vector_capacity;

  std::vector<double> init(static_cast<std::size_t>(capacity), 1.0);
  host.load(init, init, init);

  TextTable table("Fig. 10: STREAM-Copy bandwidth vs copied data size");
  table.set_header({"Copied KB", "cycles/run", "time/run us", "MB/s",
                    "% of peak"});
  const double peak = host.theoretical_peak_bytes_per_s(stream::Mode::kCopy);

  // Sweep sizes like the figure's x-axis (0..700 KB), denser on the left
  // where the overhead dominates.
  std::vector<std::int64_t> sizes;
  for (std::int64_t n = 8; n < 2048; n *= 2) sizes.push_back(n);
  for (std::int64_t n = 2048; n <= capacity; n += 8192)
    sizes.push_back(std::min(n, capacity));
  if (sizes.back() != capacity) sizes.push_back(capacity);

  double max_rate = 0;
  for (std::int64_t n : sizes) {
    const auto r = host.run(stream::Mode::kCopy, n, /*runs=*/3);
    const double rate = r.best_rate_bytes_per_s();
    max_rate = std::max(max_rate, rate);
    table.add_row({TextTable::num(n * 8.0 / 1024, 1),
                   TextTable::num(r.cycles_per_run),
                   TextTable::num(r.seconds.min() * 1e6, 3),
                   TextTable::num(rate / 1e6, 1),
                   TextTable::num(100 * rate / peak, 2)});
  }
  std::printf("%s\n", [&] {
    std::ostringstream os;
    table.print(os);
    return os.str();
  }().c_str());

  std::printf("theoretical peak: %.0f MB/s (2 ports x 8 lanes x 8B x 120MHz)\n",
              peak / 1e6);
  std::printf("maximum measured: %.0f MB/s = %.2f%% of peak\n", max_rate / 1e6,
              100 * max_rate / peak);
  std::printf("paper:            15301 MB/s = 99.6%% of peak\n");
  return max_rate / peak > 0.99 ? 0 : 1;
}
