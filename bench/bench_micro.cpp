// Google-benchmark microbenchmarks of the simulator's building blocks:
// how fast the host-side model itself runs (simulation throughput, not
// FPGA bandwidth). Useful for keeping the cycle-accurate STREAM runs and
// the DSE sweeps fast as the library evolves.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/cycle_polymem.hpp"
#include "core/polymem.hpp"
#include "hw/benes.hpp"
#include "hw/crossbar.hpp"
#include "maf/maf.hpp"
#include "maf/maf_table.hpp"
#include "sched/scheduler.hpp"

namespace {

using namespace polymem;

void BM_MafBank(benchmark::State& state) {
  const maf::Maf maf(static_cast<maf::Scheme>(state.range(0)), 2, 4);
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(maf.bank(i, i * 7 + 3));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MafBank)->DenseRange(0, 4)->ArgNames({"scheme"});

void BM_MafTableBank(benchmark::State& state) {
  // The tabulated fast path vs the analytic MAF above.
  const maf::Maf maf(static_cast<maf::Scheme>(state.range(0)), 2, 4);
  const maf::MafTable table(maf);
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.bank(i, i * 7 + 3));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MafTableBank)->DenseRange(0, 4)->ArgNames({"scheme"});

void BM_BenesRoute(benchmark::State& state) {
  // Route computation cost — the reason hardware uses crossbars.
  const unsigned lanes = static_cast<unsigned>(state.range(0));
  std::vector<unsigned> sel(lanes);
  std::iota(sel.rbegin(), sel.rend(), 0u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hw::benes_route(sel));
  }
}
BENCHMARK(BM_BenesRoute)->Arg(8)->Arg(32);

void BM_Shuffle(benchmark::State& state) {
  const unsigned lanes = static_cast<unsigned>(state.range(0));
  std::vector<hw::Word> in(lanes), out(lanes);
  std::vector<unsigned> sel(lanes);
  std::iota(sel.rbegin(), sel.rend(), 0u);
  std::iota(in.begin(), in.end(), 0u);
  for (auto _ : state) {
    hw::shuffle<hw::Word>(in, sel, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * lanes);
}
BENCHMARK(BM_Shuffle)->Arg(8)->Arg(16)->Arg(32);

void BM_PolyMemParallelRead(benchmark::State& state) {
  auto cfg = core::PolyMemConfig::with_capacity(
      64 * KiB, static_cast<maf::Scheme>(state.range(0)), 2, 4);
  core::PolyMem mem(cfg);
  std::vector<core::Word> out(8);
  std::int64_t i = 0;
  const access::PatternKind kind =
      mem.supports(access::PatternKind::kRow) == maf::SupportLevel::kAny
          ? access::PatternKind::kRow
          : access::PatternKind::kRect;
  for (auto _ : state) {
    mem.read_into({kind, {i % (cfg.height - cfg.p), 0}}, 0, out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_PolyMemParallelRead)->DenseRange(0, 4)->ArgNames({"scheme"});

// Cached-vs-naive hot path (ISSUE: plan-template cache). Both walk the
// same strided anchor sequence; arg0 selects the scheme, arg1 the p x q
// geometry (packed as p * 16 + q). The cached run replays memoized plan
// templates; the naive run re-plans every access through the AGU.
core::PolyMemConfig hot_path_config(benchmark::State& state) {
  const auto scheme = static_cast<maf::Scheme>(state.range(0));
  const unsigned p = static_cast<unsigned>(state.range(1)) / 16;
  const unsigned q = static_cast<unsigned>(state.range(1)) % 16;
  return core::PolyMemConfig::with_capacity(256 * KiB, scheme, p, q);
}

void hot_path_walk(benchmark::State& state, core::PolyMem& mem) {
  const auto& cfg = mem.config();
  std::vector<core::Word> out(cfg.lanes());
  // Row walks for row-capable schemes, aligned rect walks otherwise
  // (RoCo serves rectangles only at aligned anchors).
  const bool rows =
      mem.supports(access::PatternKind::kRow) == maf::SupportLevel::kAny;
  const access::PatternKind kind =
      rows ? access::PatternKind::kRow : access::PatternKind::kRect;
  const std::int64_t step_i = rows ? 1 : cfg.p;
  const std::int64_t rows_avail = cfg.height - (rows ? 1 : cfg.p) + step_i;
  std::int64_t i = 0;
  for (auto _ : state) {
    mem.read_into({kind, {i % rows_avail, 0}}, 0, out);
    benchmark::DoNotOptimize(out.data());
    i += step_i;
  }
  state.SetItemsProcessed(state.iterations() * cfg.lanes());
}

void BM_PolyMemReadNaive(benchmark::State& state) {
  core::PolyMem mem(hot_path_config(state));
  mem.set_plan_cache_enabled(false);
  hot_path_walk(state, mem);
}
BENCHMARK(BM_PolyMemReadNaive)
    ->ArgNames({"scheme", "pq"})
    ->Args({1, 2 * 16 + 4})   // ReRo 2x4
    ->Args({1, 4 * 16 + 4})   // ReRo 4x4
    ->Args({3, 2 * 16 + 4})   // RoCo 2x4
    ->Args({3, 4 * 16 + 4});  // RoCo 4x4

void BM_PolyMemReadCached(benchmark::State& state) {
  core::PolyMem mem(hot_path_config(state));
  hot_path_walk(state, mem);
}
BENCHMARK(BM_PolyMemReadCached)
    ->ArgNames({"scheme", "pq"})
    ->Args({1, 2 * 16 + 4})
    ->Args({1, 4 * 16 + 4})
    ->Args({3, 2 * 16 + 4})
    ->Args({3, 4 * 16 + 4});

void BM_PolyMemReadBatch(benchmark::State& state) {
  // The batched engine on top of the cache: validate once, then run the
  // whole anchor grid back-to-back.
  core::PolyMem mem(hot_path_config(state));
  const auto& cfg = mem.config();
  const bool rows =
      mem.supports(access::PatternKind::kRow) == maf::SupportLevel::kAny;
  const core::AccessBatch batch{
      rows ? access::PatternKind::kRow : access::PatternKind::kRect,
      {0, 0},
      {rows ? 1 : cfg.p, 0},
      rows ? cfg.height : cfg.height / cfg.p,
      {0, 0},
      1};
  std::vector<core::Word> out(
      static_cast<std::size_t>(batch.count()) * cfg.lanes());
  for (auto _ : state) {
    mem.read_batch(batch, 0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch.count() * cfg.lanes());
}
BENCHMARK(BM_PolyMemReadBatch)
    ->ArgNames({"scheme", "pq"})
    ->Args({1, 2 * 16 + 4})
    ->Args({1, 4 * 16 + 4})
    ->Args({3, 2 * 16 + 4})
    ->Args({3, 4 * 16 + 4});

void BM_PolyMemParallelWrite(benchmark::State& state) {
  auto cfg = core::PolyMemConfig::with_capacity(64 * KiB,
                                                maf::Scheme::kReRo, 2, 4);
  core::PolyMem mem(cfg);
  std::vector<core::Word> data(8, 42);
  std::int64_t i = 0;
  for (auto _ : state) {
    mem.write({access::PatternKind::kRow, {i % cfg.height, 0}}, data);
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_PolyMemParallelWrite);

void BM_CyclePolyMemTick(benchmark::State& state) {
  auto cfg = core::PolyMemConfig::with_capacity(64 * KiB,
                                                maf::Scheme::kReRo, 2, 4);
  core::CyclePolyMem mem(cfg);
  std::int64_t i = 0;
  for (auto _ : state) {
    mem.issue_read(0, {access::PatternKind::kRow, {i % cfg.height, 0}});
    mem.tick();
    benchmark::DoNotOptimize(mem.retire_read(0));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("simulated cycles/s");
}
BENCHMARK(BM_CyclePolyMemTick);

void BM_SchedulerExact(benchmark::State& state) {
  const auto trace = sched::AccessTrace::dense_block(
      {1, 1}, state.range(0), state.range(0));
  const sched::Scheduler scheduler(maf::Scheme::kReRo, 2, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scheduler.schedule(trace, sched::SolverKind::kExact));
  }
}
BENCHMARK(BM_SchedulerExact)->Arg(4)->Arg(8)->ArgNames({"tile"});

void BM_ConflictProbe(benchmark::State& state) {
  // Uncached conflict verification cost (one full MAF-period sweep).
  const maf::Maf maf(maf::Scheme::kReRo, 2, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        maf::verify_conflict_free(maf, access::PatternKind::kMainDiag));
  }
}
BENCHMARK(BM_ConflictProbe);

}  // namespace

BENCHMARK_MAIN();
