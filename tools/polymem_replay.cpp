// polymem_replay: replays a recorded access trace against any scheme x
// cache x port configuration and verifies it bit-for-bit against the
// canonical host-memory oracle (src/replay). The trace carries only
// addresses — the harness supplies the memory, so one recording checks
// every polymorphic configuration.
//
// Usage:   polymem_replay [options] <trace-file>
//          polymem_replay --example       (prints a sample trace)
//
// Options:
//   --scheme <S|all>   scheme to replay under (ReO|ReRo|ReCo|RoCo|ReTr,
//                      default ReRo; `all` replays every scheme)
//   --ports <N>        read ports to round-robin batched reads over
//   --cache            route through the CachedMatrix/LMem software cache
//   --adaptive         route through the adaptive layout engine: --scheme
//                      is the initial scheme only; the engine migrates
//                      live as the pattern mix shifts, and the same host
//                      oracle diffs the migrating run (not with --cache)
//   --window <N>       adaptive profiler window (default: derived)
//   --write-through    write-through instead of write-back (with --cache)
//   --no-checksums     skip recorded-checksum comparison
//   --lint             additionally re-lint the trace (support, bounds,
//                      conflicts, RAW hazards, bank imbalance); lint
//                      ERRORS fail the run, warnings do not
//   --format=text|json output format (default text)
//
// Exit status: 0 verified, 1 divergence or lint errors, 2 usage/parse
// errors.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "replay/replay.hpp"

namespace {

using polymem::maf::Scheme;
using polymem::replay::ReplayOptions;
using polymem::replay::ReplayReport;
using polymem::sched::RecordedTrace;

constexpr const char* kExample =
    "# polymem_replay sample trace: 2x4 lanes over a 16x16 space.\n"
    "# One tuple per line: dir pattern @ anchor [xCOUNT] [step di,dj]\n"
    "#                     [sum <16 hex digits>]\n"
    "polymem-trace v1\n"
    "geometry 2x4 space 16x16 seed 42\n"
    "R row @ 0,0 x16 step 1,0\n"
    "W rect @ 4,8\n"
    "R rect @ 4,8\n"
    "R mdiag @ 0,0 x2 step 8,8\n";

void usage(std::ostream& out) {
  out << "usage: polymem_replay [--scheme S|all] [--ports N] [--cache]\n"
         "                      [--adaptive] [--window N] [--write-through]\n"
         "                      [--no-checksums] [--lint]\n"
         "                      [--format=text|json] <trace-file>\n"
         "       polymem_replay --example\n";
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void print_json(std::ostream& out, const std::vector<ReplayReport>& reports,
                const std::vector<polymem::verify::LintReport>& lints,
                bool ok) {
  out << "{\n  \"ok\": " << (ok ? "true" : "false") << ",\n  \"runs\": [\n";
  for (std::size_t k = 0; k < reports.size(); ++k) {
    const ReplayReport& r = reports[k];
    out << "    {\n"
        << "      \"scheme\": \"" << polymem::maf::scheme_name(r.scheme)
        << "\",\n"
        << "      \"through_cache\": " << (r.through_cache ? "true" : "false")
        << ",\n"
        << "      \"adaptive\": " << (r.adaptive ? "true" : "false") << ",\n"
        << "      \"ops\": " << r.ops << ",\n"
        << "      \"reads\": " << r.reads << ",\n"
        << "      \"writes\": " << r.writes << ",\n"
        << "      \"batched_accesses\": " << r.batched_accesses << ",\n"
        << "      \"fallback_accesses\": " << r.fallback_accesses << ",\n"
        << "      \"checksums_checked\": " << r.checksums_checked << ",\n"
        << "      \"checksum_mismatches\": " << r.checksum_mismatches << ",\n"
        << "      \"data_mismatches\": " << r.data_mismatches << ",\n"
        << "      \"final_image_ok\": " << (r.final_image_ok ? "true" : "false")
        << ",\n"
        << "      \"verified\": " << (r.verified() ? "true" : "false");
    if (r.adaptive) {
      out << ",\n      \"final_scheme\": \""
          << polymem::maf::scheme_name(r.final_scheme) << "\",\n"
          << "      \"migrations\": " << r.migrations << ",\n"
          << "      \"migrations_aborted\": " << r.migrations_aborted << ",\n"
          << "      \"migration_mismatches\": " << r.migration_mismatches
          << ",\n"
          << "      \"forwarded_words\": " << r.forwarded_words;
    }
    if (k < lints.size()) {
      out << ",\n      \"lint\": {\"errors\": " << lints[k].errors()
          << ", \"warnings\": " << lints[k].warnings()
          << ", \"diagnostics\": [";
      for (std::size_t d = 0; d < lints[k].diagnostics.size(); ++d) {
        if (d) out << ", ";
        out << "\"" << json_escape(lints[k].diagnostics[d].message) << "\"";
      }
      out << "]}";
    }
    out << "\n    }" << (k + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string scheme_arg = "ReRo";
  std::string format = "text";
  std::string path;
  ReplayOptions base;
  bool lint = false;
  bool example = false;

  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    auto next = [&]() -> std::string {
      if (k + 1 >= argc) {
        usage(std::cerr);
        std::exit(2);
      }
      return argv[++k];
    };
    if (arg == "--example") {
      example = true;
    } else if (arg == "--scheme") {
      scheme_arg = next();
    } else if (arg == "--ports") {
      base.read_ports = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--cache") {
      base.through_cache = true;
    } else if (arg == "--adaptive") {
      base.adaptive = true;
    } else if (arg == "--window") {
      base.adaptive_window = std::stol(next());
    } else if (arg == "--write-through") {
      base.write_policy = polymem::cache::WritePolicy::kWriteThrough;
    } else if (arg == "--no-checksums") {
      base.verify_checksums = false;
    } else if (arg == "--lint") {
      lint = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      usage(std::cerr);
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      usage(std::cerr);
      return 2;
    }
  }
  if (example) {
    std::cout << kExample;
    return 0;
  }
  if (path.empty() || (format != "text" && format != "json")) {
    usage(std::cerr);
    return 2;
  }
  if (base.adaptive && base.through_cache) {
    std::cerr << "--adaptive does not route through the cache; "
                 "drop one of --adaptive/--cache\n";
    usage(std::cerr);
    return 2;
  }

  try {
    const RecordedTrace trace = polymem::sched::parse_trace_file(path);

    std::vector<Scheme> schemes;
    if (scheme_arg == "all") {
      schemes.assign(std::begin(polymem::maf::kAllSchemes),
                     std::end(polymem::maf::kAllSchemes));
    } else {
      schemes.push_back(polymem::maf::scheme_from_name(scheme_arg));
    }

    std::vector<ReplayReport> reports;
    std::vector<polymem::verify::LintReport> lints;
    bool ok = true;
    for (Scheme scheme : schemes) {
      ReplayOptions options = base;
      options.scheme = scheme;
      reports.push_back(polymem::replay::replay(trace, options));
      ok = ok && reports.back().verified();
      if (lint) {
        lints.push_back(polymem::replay::relint(trace, scheme));
        ok = ok && lints.back().ok();
      }
    }

    if (format == "json") {
      print_json(std::cout, reports, lints, ok);
    } else {
      std::cout << path << ": " << trace.ops.size() << " ops, "
                << trace.accesses() << " accesses over " << trace.height
                << "x" << trace.width << " (geometry " << trace.p << "x"
                << trace.q << ", seed " << trace.seed << ")\n";
      for (std::size_t k = 0; k < reports.size(); ++k) {
        std::cout << reports[k].summary() << "\n";
        if (k < lints.size() && !lints[k].diagnostics.empty()) {
          const std::string s = lints[k].summary();
          std::cout << s;
          if (s.empty() || s.back() != '\n') std::cout << "\n";
        }
      }
      std::cout << (ok ? "REPLAY OK" : "REPLAY FAILED") << "\n";
    }
    return ok ? 0 : 1;
  } catch (const polymem::sched::TraceParseError& e) {
    std::cerr << path << ":" << e.line() << ": " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "polymem_replay: " << e.what() << "\n";
    return 2;
  }
}
