// polymem_info: the single-configuration explorer.
//
// Reads a PolyMem configuration from a key=value file (the same style the
// paper's design used: "a simple configuration file sets ... the required
// DSE parameters", Sec. IV-A) and prints everything the library knows
// about it: geometry, machine-checked pattern support, synthesis
// estimates, and bandwidths.
//
// Usage:   polymem_info <config-file>
//          polymem_info --example        (prints a template and exits)
//
// Config keys: capacity_kb (512), scheme (ReRo), p (2), q (4),
//              read_ports (1), clock_mhz (optional override).
#include <cstdio>
#include <iostream>

#include "adapt/policy.hpp"
#include "common/config.hpp"
#include "core/frame_pool.hpp"
#include "dse/explorer.hpp"
#include "maf/conflict.hpp"
#include "service/engine.hpp"
#include "synth/fmax_model.hpp"
#include "synth/resource_model.hpp"
#include "verify/maf_prover.hpp"

namespace {

constexpr const char* kExample =
    "# PolyMem configuration (paper Table III parameters)\n"
    "capacity_kb = 512\n"
    "scheme = ReRo        # ReO | ReRo | ReCo | RoCo | ReTr\n"
    "p = 2\n"
    "q = 4\n"
    "read_ports = 1\n"
    "# clock_mhz = 120        # optional: override the model's estimate\n"
    "# cache_tile_rows = 16   # optional: software-cache tile geometry\n"
    "# cache_tile_cols = 64   #   (defaults to row panels, up to 4 frames)\n"
    "# service_ports = 2      # optional: request-engine submit queues\n"
    "# service_queue_bound = 256   # per-port admission bound\n"
    "# service_shards = 2     # multi-tenant shard count\n"
    "# service_max_coalesce = 64   # longest run one drain serves\n"
    "# adapt_window = 4096    # adaptive profiler window (accesses)\n"
    "# adapt_band_rows = 2    # migration band height (defaults to p)\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace polymem;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <config-file> | --example\n", argv[0]);
    return 2;
  }
  if (std::string(argv[1]) == "--example") {
    std::fputs(kExample, stdout);
    return 0;
  }

  try {
    const auto file = ConfigFile::load(argv[1]);
    const auto capacity_kb =
        static_cast<std::uint64_t>(file.get_int_or("capacity_kb", 512));
    const auto scheme =
        maf::scheme_from_name(file.get_string_or("scheme", "ReRo"));
    const auto p = static_cast<unsigned>(file.get_int_or("p", 2));
    const auto q = static_cast<unsigned>(file.get_int_or("q", 4));
    const auto ports =
        static_cast<unsigned>(file.get_int_or("read_ports", 1));

    const auto cfg = core::PolyMemConfig::with_capacity(
        capacity_kb * KiB, scheme, p, q, ports);
    const auto& fmax_model = synth::FmaxModel::paper_calibrated();
    const synth::ResourceModel resources;
    const double mhz =
        file.has("clock_mhz") ? file.get_double("clock_mhz")
                              : fmax_model.fmax_mhz(cfg);
    const auto est = resources.estimate(cfg);

    std::printf("configuration : %s\n", cfg.describe().c_str());
    std::printf("address space : %lld x %lld elements (%u-bit)\n",
                static_cast<long long>(cfg.height),
                static_cast<long long>(cfg.width), cfg.data_width_bits);
    std::printf("banks         : %u x %u, %lld words each, x%u replicas\n",
                cfg.p, cfg.q, static_cast<long long>(cfg.words_per_bank()),
                cfg.read_ports);
    std::printf("physical data : %s\n",
                format_capacity(cfg.physical_bytes()).c_str());

    std::printf("\npattern support (machine-checked):\n");
    const maf::Maf maf(scheme, p, q);
    for (access::PatternKind kind : access::kAllPatterns)
      std::printf("  %-6s: %s\n", access::pattern_name(kind),
                  maf::support_level_name(maf::probe_support(maf, kind)));
    std::printf("  MAF periods: i=%lld, j=%lld (%lld anchor residue "
                "classes)\n",
                static_cast<long long>(maf.period_i()),
                static_cast<long long>(maf.period_j()),
                static_cast<long long>(maf.period_i() * maf.period_j()));

    // DSE users compare schemes at a fixed geometry; show which of the
    // five are statically proven (verify/maf_prover) at this p x q.
    std::printf("\nstatic prover (%ux%u, all schemes):\n", p, q);
    for (maf::Scheme s : maf::kAllSchemes) {
      const auto proof = verify::prove(s, p, q);
      std::printf("  %-4s: periods i=%-4lld j=%-4lld %s\n", maf::scheme_name(s),
                  static_cast<long long>(proof.period_i),
                  static_cast<long long>(proof.period_j),
                  proof.ok ? "PROVEN" : "REFUTED");
      if (!proof.ok)
        for (const auto& v : proof.violations)
          std::printf("        %s\n", v.message.c_str());
    }

    std::printf("\nsynthesis estimate (Virtex-6 SX475T):\n");
    std::printf("  clock      : %.0f MHz%s\n", mhz,
                file.has("clock_mhz") ? " (user override)" : " (model)");
    std::printf("  BRAM       : %llu RAMB36 = %.1f%%\n",
                static_cast<unsigned long long>(est.bram36), est.bram_pct);
    std::printf("  logic      : %.1f%%   LUTs: %.1f%%\n", est.logic_pct,
                est.lut_pct);
    std::printf("  fits       : %s\n", est.fits() ? "yes" : "NO");

    // Out-of-core operation: how the space partitions into cache frames
    // (src/cache). Geometry is overridable for tuning experiments.
    const core::FramePool frames =
        file.has("cache_tile_rows") || file.has("cache_tile_cols")
            ? core::FramePool::whole_space(
                  cfg,
                  file.get_int_or("cache_tile_rows", cfg.height),
                  file.get_int_or("cache_tile_cols", cfg.width))
            : core::FramePool::default_tiling(cfg);
    std::printf("\nsoftware cache (src/cache, default frame pool):\n");
    std::printf("  frames     : %d (%lld x %lld grid)\n", frames.frames(),
                static_cast<long long>(frames.frames_i()),
                static_cast<long long>(frames.frames_j()));
    std::printf("  tile       : %lld x %lld elements = %s each\n",
                static_cast<long long>(frames.tile_rows()),
                static_cast<long long>(frames.tile_cols()),
                format_capacity(frames.frame_bytes()).c_str());
    std::printf("  out-of-core: matrices up to board DRAM; %d-deep "
                "residency, LRU/FIFO eviction, async prefetch\n",
                frames.frames());

    // Service layer (src/service): the request-engine geometry this
    // configuration would be served through, defaults from
    // EngineOptions unless the config overrides them.
    service::EngineOptions engine_defaults;
    const auto svc_ports = static_cast<unsigned>(
        file.get_int_or("service_ports", engine_defaults.ports));
    const auto svc_bound = static_cast<std::uint64_t>(file.get_int_or(
        "service_queue_bound",
        static_cast<std::int64_t>(engine_defaults.queue_bound)));
    const auto svc_shards =
        static_cast<unsigned>(file.get_int_or("service_shards", 2));
    const auto svc_coalesce = static_cast<std::uint64_t>(file.get_int_or(
        "service_max_coalesce",
        static_cast<std::int64_t>(engine_defaults.max_coalesce)));
    std::printf("\nservice layer (src/service, request engine):\n");
    std::printf("  submit ports   : %u bounded queues, %llu requests each\n",
                svc_ports, static_cast<unsigned long long>(svc_bound));
    std::printf("  coalesce window: up to %llu requests per compiled run\n",
                static_cast<unsigned long long>(svc_coalesce));
    std::printf("  multi-tenant   : %u shards (tile-hash routed; each a "
                "replica of this configuration over shared LMem)\n",
                svc_shards);
    std::printf("  admission      : typed shedding (kOverloaded) beyond "
                "%llu queued; in-flight retires in cycle order\n",
                static_cast<unsigned long long>(svc_bound));

    // Adaptive layout engine (src/adapt): how this geometry would
    // profile and migrate at runtime, plus every scheme's projected
    // cost for a uniform pattern mix — the policy's view when the
    // workload gives it no preference.
    {
      adapt::ProfilerOptions prof_defaults;
      const auto window = file.get_int_or("adapt_window",
                                          prof_defaults.window);
      const auto band_rows = file.get_int_or("adapt_band_rows", cfg.p);
      const std::int64_t bands = (cfg.height + band_rows - 1) / band_rows;
      const std::int64_t cells = cfg.height * cfg.width;
      const adapt::MigrationPolicy policy(cfg.p, cfg.q, cells);
      std::printf("\nadaptive layout engine (src/adapt):\n");
      std::printf("  profiler window: %lld parallel accesses\n",
                  static_cast<long long>(window));
      std::printf("  migration bands: %lld bands x %lld rows "
                  "(copy-forward granularity)\n",
                  static_cast<long long>(bands),
                  static_cast<long long>(band_rows));
      std::printf("  migration cost : %.0f access slots (one full copy, "
                  "2*cells/lanes)\n",
                  policy.migration_cost_accesses());
      adapt::WindowProfile uniform;
      const std::int64_t per_kind = window / std::ssize(access::kAllPatterns);
      for (access::PatternKind kind : access::kAllPatterns) {
        uniform.kinds[static_cast<std::size_t>(kind)].reads = per_kind;
        uniform.accesses += per_kind;
        uniform.reads += per_kind;
      }
      std::printf("  uniform-mix scheme costs (%lld accesses, "
                  "lower is better):\n",
                  static_cast<long long>(uniform.accesses));
      for (const adapt::SchemeScore& s : policy.score(uniform)) {
        if (!s.available) {
          std::printf("    %-4s: no MAF at %ux%u\n",
                      maf::scheme_name(s.scheme), p, q);
          continue;
        }
        std::printf("    %-4s: cost %-9.0f affine %u/%u%s\n",
                    maf::scheme_name(s.scheme), s.cost, s.affine_served,
                    s.affine_any,
                    s.scheme == scheme ? "   <- configured" : "");
      }
    }

    const double port_bw = bandwidth_bytes_per_s(cfg.lanes(), 64, mhz * 1e6);
    std::printf("\nbandwidth at %.0f MHz:\n", mhz);
    std::printf("  write (per port)   : %s\n",
                format_bandwidth(port_bw, true).c_str());
    std::printf("  read (aggregated)  : %s\n",
                format_bandwidth(ports * port_bw, true).c_str());
    std::printf("  read+write ceiling : %s\n",
                format_bandwidth((ports + 1) * port_bw, true).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
