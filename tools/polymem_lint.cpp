// polymem_lint: static checker for PolyMem configurations and access
// plans — drives verify/maf_prover and verify/plan_lint over a key=value
// file and exits nonzero on violations (CI gate; see .github/workflows).
//
// Usage:   polymem_lint [--prove] <config-file>
//          polymem_lint --example        (prints a template and exits)
//
// The file sets the configuration (scheme, p, q, and either height/width
// or capacity_kb) plus an optional batch program and traces:
//
//   opN    = <read|write> <pattern> at <i>,<j> [step <di>,<dj> x<count>]
//                                              [outer <di>,<dj> x<count>]
//   traceN = dense at <i>,<j> <rows>x<cols>
//
// --prove additionally runs the full static prover (conflict freedom over
// the MAF period lattice, addressing injectivity, plan-template
// agreement) for the configuration.
//
// Exit status: 0 clean, 1 lint errors or refuted proof, 2 usage/parse
// errors.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/units.hpp"
#include "verify/maf_prover.hpp"
#include "verify/plan_lint.hpp"

namespace {

using polymem::ConfigFile;
using polymem::core::AccessBatch;
using polymem::core::PolyMemConfig;
using polymem::verify::BatchOp;

constexpr const char* kExample =
    "# polymem_lint configuration: geometry + a batch program to check\n"
    "scheme = ReRo        # ReO | ReRo | ReCo | RoCo | ReTr\n"
    "p = 2\n"
    "q = 4\n"
    "height = 64          # or: capacity_kb = 512 (near-square shape)\n"
    "width = 64\n"
    "\n"
    "# opN = <read|write> <pattern> at <i>,<j> [step <di>,<dj> x<count>]\n"
    "#                                         [outer <di>,<dj> x<count>]\n"
    "op1 = write rect at 0,0 step 0,4 x16 outer 2,0 x16\n"
    "op2 = read row at 32,0 step 1,0 x32\n"
    "\n"
    "# traceN = dense at <i>,<j> <rows>x<cols>\n"
    "trace1 = dense at 0,0 16x16\n";

[[noreturn]] void parse_fail(const std::string& key, const std::string& value,
                             const std::string& why) {
  throw polymem::InvalidArgument("cannot parse " + key + " = '" + value +
                                 "': " + why);
}

std::vector<std::string> tokenize(const std::string& text) {
  std::istringstream in(text);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

polymem::access::Coord parse_coord(const std::string& key,
                                   const std::string& tok) {
  polymem::access::Coord c;
  char comma = 0;
  std::istringstream in(tok);
  if (!(in >> c.i >> comma >> c.j) || comma != ',' || !in.eof())
    parse_fail(key, tok, "expected <i>,<j>");
  return c;
}

std::int64_t parse_count(const std::string& key, const std::string& tok) {
  std::int64_t n = 0;
  if (tok.size() < 2 || tok[0] != 'x') parse_fail(key, tok, "expected x<n>");
  std::istringstream in(tok.substr(1));
  if (!(in >> n) || !in.eof()) parse_fail(key, tok, "expected x<n>");
  return n;
}

BatchOp parse_op(const std::string& key, const std::string& value) {
  const auto tok = tokenize(value);
  std::size_t t = 0;
  auto next = [&]() -> const std::string& {
    if (t >= tok.size()) parse_fail(key, value, "unexpected end of op");
    return tok[t++];
  };
  BatchOp op;
  const std::string dir = next();
  if (dir == "read") {
    op.dir = BatchOp::Dir::kRead;
  } else if (dir == "write") {
    op.dir = BatchOp::Dir::kWrite;
  } else {
    parse_fail(key, value, "op must start with read|write");
  }
  op.batch.kind = polymem::access::pattern_from_name(next());
  if (next() != "at") parse_fail(key, value, "expected 'at <i>,<j>'");
  op.batch.start = parse_coord(key, next());
  while (t < tok.size()) {
    const std::string word = next();
    if (word == "step") {
      op.batch.inner_stride = parse_coord(key, next());
      op.batch.inner_count = parse_count(key, next());
    } else if (word == "outer") {
      op.batch.outer_stride = parse_coord(key, next());
      op.batch.outer_count = parse_count(key, next());
    } else {
      parse_fail(key, value, "unknown clause '" + word + "'");
    }
  }
  return op;
}

polymem::sched::AccessTrace parse_trace(const std::string& key,
                                        const std::string& value) {
  const auto tok = tokenize(value);
  if (tok.size() != 4 || tok[0] != "dense" || tok[1] != "at")
    parse_fail(key, value, "expected 'dense at <i>,<j> <rows>x<cols>'");
  const auto origin = parse_coord(key, tok[2]);
  std::int64_t rows = 0, cols = 0;
  char x = 0;
  std::istringstream in(tok[3]);
  if (!(in >> rows >> x >> cols) || x != 'x' || !in.eof())
    parse_fail(key, value, "expected <rows>x<cols>");
  return polymem::sched::AccessTrace::dense_block(origin, rows, cols);
}

PolyMemConfig parse_config(const ConfigFile& file) {
  const auto scheme =
      polymem::maf::scheme_from_name(file.get_string_or("scheme", "ReRo"));
  const auto p = static_cast<unsigned>(file.get_int_or("p", 2));
  const auto q = static_cast<unsigned>(file.get_int_or("q", 4));
  if (file.has("height") || file.has("width")) {
    PolyMemConfig cfg;
    cfg.scheme = scheme;
    cfg.p = p;
    cfg.q = q;
    cfg.height = file.get_int("height");
    cfg.width = file.get_int("width");
    return cfg;  // validated by the linter/prover, which report PML001
  }
  const auto capacity_kb =
      static_cast<std::uint64_t>(file.get_int_or("capacity_kb", 512));
  return PolyMemConfig::with_capacity(capacity_kb * polymem::KiB, scheme, p,
                                      q);
}

}  // namespace

int main(int argc, char** argv) {
  bool prove = false;
  std::string path;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--example") {
      std::fputs(kExample, stdout);
      return 0;
    }
    if (arg == "--prove") {
      prove = true;
    } else if (path.empty()) {
      path = arg;
    } else {
      path.clear();
      break;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s [--prove] <config-file> | --example\n",
                 argv[0]);
    return 2;
  }

  try {
    const auto file = ConfigFile::load(path);
    const PolyMemConfig cfg = parse_config(file);
    std::vector<BatchOp> ops;
    std::vector<std::pair<std::string, polymem::sched::AccessTrace>> traces;
    for (const auto& [key, value] : file.entries()) {
      if (key.rfind("op", 0) == 0) ops.push_back(parse_op(key, value));
      if (key.rfind("trace", 0) == 0)
        traces.emplace_back(key, parse_trace(key, value));
    }

    bool clean = true;
    std::printf("lint: %s scheme %s, %ux%u banks, %lld x %lld elements\n",
                path.c_str(), polymem::maf::scheme_name(cfg.scheme), cfg.p,
                cfg.q, static_cast<long long>(cfg.height),
                static_cast<long long>(cfg.width));
    const auto program = polymem::verify::lint_program(cfg, ops);
    std::printf("program (%zu op(s)):\n%s\n", ops.size(),
                program.summary().c_str());
    clean = clean && program.ok();
    for (const auto& [name, trace] : traces) {
      const auto report = polymem::verify::lint_trace(cfg, trace);
      std::printf("%s (%lld element(s)):\n%s\n", name.c_str(),
                  static_cast<long long>(trace.size()),
                  report.summary().c_str());
      clean = clean && report.ok();
    }
    if (prove) {
      const auto report = polymem::verify::prove(cfg);
      std::printf("%s\n", report.summary().c_str());
      clean = clean && report.ok;
    }
    return clean ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
