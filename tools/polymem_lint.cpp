// polymem_lint: static checker for PolyMem configurations and access
// plans — drives verify/maf_prover and verify/plan_lint over a key=value
// file and exits nonzero on violations (CI gate; see .github/workflows).
//
// Usage:   polymem_lint [--prove] [--format=text|json] <config-file>
//          polymem_lint [--format=...] [--scheme S] [--p N] [--q N]
//                       --prove-affine '<spec>' [config-file]
//          polymem_lint --example        (prints a template and exits)
//
// The file sets the configuration (scheme, p, q, and either height/width
// or capacity_kb) plus an optional batch program and traces:
//
//   opN     = <read|write> <pattern> at <i>,<j> [step <di>,<dj> x<count>]
//                                               [outer <di>,<dj> x<count>]
//   affineN = <read|write> { lanes <U>x<V> ; i = <expr> ; j = <expr> }
//             at <i>,<j> [step ...] [outer ...]
//   traceN  = dense at <i>,<j> <rows>x<cols>
//
// Affine ops are admitted through the symbolic conflict-freedom prover
// (verify/affine_prover.hpp) instead of the Table-I capability oracle.
//
// --prove additionally runs the full static prover (conflict freedom over
// the MAF period lattice, addressing injectivity, plan-template
// agreement, symbolic-vs-sweep differential) for the configuration.
//
// --prove-affine '<spec>' proves one affine pattern symbolically and
// differentially validates the verdict against the brute-force sweep;
// the scheme/p/q come from the config file or the --scheme/--p/--q flags.
//
// --format=json emits one machine-readable JSON document with stable
// `code`/`severity` fields per diagnostic and structured counterexamples.
//
// Exit status: 0 clean, 1 lint errors or refuted proof, 2 usage/parse
// errors.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/units.hpp"
#include "verify/maf_prover.hpp"
#include "verify/plan_lint.hpp"

namespace {

using polymem::ConfigFile;
using polymem::core::AccessBatch;
using polymem::core::PolyMemConfig;
using polymem::verify::AffineCounterexample;
using polymem::verify::BatchOp;
using polymem::verify::Diagnostic;
using polymem::verify::LintReport;

constexpr const char* kExample =
    "# polymem_lint configuration: geometry + a batch program to check\n"
    "scheme = ReRo        # ReO | ReRo | ReCo | RoCo | ReTr\n"
    "p = 2\n"
    "q = 4\n"
    "height = 64          # or: capacity_kb = 512 (near-square shape)\n"
    "width = 64\n"
    "\n"
    "# opN = <read|write> <pattern> at <i>,<j> [step <di>,<dj> x<count>]\n"
    "#                                         [outer <di>,<dj> x<count>]\n"
    "op1 = write rect at 0,0 step 0,4 x16 outer 2,0 x16\n"
    "op2 = read row at 32,0 step 1,0 x32\n"
    "\n"
    "# affineN = <read|write> { <affine spec> } at <i>,<j> [step ...]\n"
    "# (admitted iff the symbolic prover shows the pattern conflict-free)\n"
    "affine1 = read { lanes 1x8 ; i = 0 ; j = 3*v } at 0,0 step 1,0 x32\n"
    "\n"
    "# traceN = dense at <i>,<j> <rows>x<cols>\n"
    "trace1 = dense at 0,0 16x16\n";

[[noreturn]] void parse_fail(const std::string& key, const std::string& value,
                             const std::string& why) {
  throw polymem::InvalidArgument("cannot parse " + key + " = '" + value +
                                 "': " + why);
}

std::vector<std::string> tokenize(const std::string& text) {
  std::istringstream in(text);
  std::vector<std::string> tokens;
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

polymem::access::Coord parse_coord(const std::string& key,
                                   const std::string& tok) {
  polymem::access::Coord c;
  char comma = 0;
  std::istringstream in(tok);
  if (!(in >> c.i >> comma >> c.j) || comma != ',' || !in.eof())
    parse_fail(key, tok, "expected <i>,<j>");
  return c;
}

std::int64_t parse_count(const std::string& key, const std::string& tok) {
  std::int64_t n = 0;
  if (tok.size() < 2 || tok[0] != 'x') parse_fail(key, tok, "expected x<n>");
  std::istringstream in(tok.substr(1));
  if (!(in >> n) || !in.eof()) parse_fail(key, tok, "expected x<n>");
  return n;
}

BatchOp::Dir parse_dir(const std::string& key, const std::string& value,
                       const std::string& tok) {
  if (tok == "read") return BatchOp::Dir::kRead;
  if (tok == "write") return BatchOp::Dir::kWrite;
  parse_fail(key, value, "op must start with read|write");
}

// Parses the shared op tail: "at <i>,<j> [step <di>,<dj> x<n>]
// [outer <di>,<dj> x<n>]", starting at token `t`.
void parse_op_tail(const std::string& key, const std::string& value,
                   const std::vector<std::string>& tok, std::size_t t,
                   AccessBatch& batch) {
  auto next = [&]() -> const std::string& {
    if (t >= tok.size()) parse_fail(key, value, "unexpected end of op");
    return tok[t++];
  };
  if (next() != "at") parse_fail(key, value, "expected 'at <i>,<j>'");
  batch.start = parse_coord(key, next());
  while (t < tok.size()) {
    const std::string word = next();
    if (word == "step") {
      batch.inner_stride = parse_coord(key, next());
      batch.inner_count = parse_count(key, next());
    } else if (word == "outer") {
      batch.outer_stride = parse_coord(key, next());
      batch.outer_count = parse_count(key, next());
    } else {
      parse_fail(key, value, "unknown clause '" + word + "'");
    }
  }
}

BatchOp parse_op(const std::string& key, const std::string& value) {
  const auto tok = tokenize(value);
  if (tok.empty()) parse_fail(key, value, "empty op");
  BatchOp op;
  op.dir = parse_dir(key, value, tok[0]);
  if (tok.size() < 2) parse_fail(key, value, "missing pattern");
  op.batch.kind = polymem::access::pattern_from_name(tok[1]);
  parse_op_tail(key, value, tok, 2, op.batch);
  return op;
}

// affineN = <read|write> { <affine spec> } at <i>,<j> [step ...] — the
// spec between the braces goes through AffinePattern::parse verbatim.
BatchOp parse_affine_op(const std::string& key, const std::string& value) {
  const auto open = value.find('{');
  const auto close = value.find('}', open == std::string::npos ? 0 : open);
  if (open == std::string::npos || close == std::string::npos)
    parse_fail(key, value, "expected '{ <affine spec> }'");
  BatchOp op;
  const auto head = tokenize(value.substr(0, open));
  if (head.size() != 1) parse_fail(key, value, "expected read|write before {");
  op.dir = parse_dir(key, value, head[0]);
  op.affine = polymem::verify::AffinePattern::parse(
      value.substr(open + 1, close - open - 1));
  const auto tok = tokenize(value.substr(close + 1));
  parse_op_tail(key, value, tok, 0, op.batch);
  return op;
}

polymem::sched::AccessTrace parse_trace(const std::string& key,
                                        const std::string& value) {
  const auto tok = tokenize(value);
  if (tok.size() != 4 || tok[0] != "dense" || tok[1] != "at")
    parse_fail(key, value, "expected 'dense at <i>,<j> <rows>x<cols>'");
  const auto origin = parse_coord(key, tok[2]);
  std::int64_t rows = 0, cols = 0;
  char x = 0;
  std::istringstream in(tok[3]);
  if (!(in >> rows >> x >> cols) || x != 'x' || !in.eof())
    parse_fail(key, value, "expected <rows>x<cols>");
  return polymem::sched::AccessTrace::dense_block(origin, rows, cols);
}

PolyMemConfig parse_config(const ConfigFile& file) {
  const auto scheme =
      polymem::maf::scheme_from_name(file.get_string_or("scheme", "ReRo"));
  const auto p = static_cast<unsigned>(file.get_int_or("p", 2));
  const auto q = static_cast<unsigned>(file.get_int_or("q", 4));
  if (file.has("height") || file.has("width")) {
    PolyMemConfig cfg;
    cfg.scheme = scheme;
    cfg.p = p;
    cfg.q = q;
    cfg.height = file.get_int("height");
    cfg.width = file.get_int("width");
    return cfg;  // validated by the linter/prover, which report PML001
  }
  const auto capacity_kb =
      static_cast<std::uint64_t>(file.get_int_or("capacity_kb", 512));
  return PolyMemConfig::with_capacity(capacity_kb * polymem::KiB, scheme, p,
                                      q);
}

// --- JSON rendering ---------------------------------------------------

std::string json_escape(const std::string& s) {
  std::ostringstream os;
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

std::string json_counterexample(const AffineCounterexample& cx) {
  std::ostringstream os;
  os << "{\"anchor\": [" << cx.anchor.i << ", " << cx.anchor.j
     << "], \"lane_a\": " << cx.lane_a << ", \"lane_b\": " << cx.lane_b
     << ", \"elem_a\": [" << cx.elem_a.i << ", " << cx.elem_a.j
     << "], \"elem_b\": [" << cx.elem_b.i << ", " << cx.elem_b.j
     << "], \"bank\": " << cx.bank << '}';
  return os.str();
}

std::string json_diagnostic(const char* source, const Diagnostic& d) {
  std::ostringstream os;
  os << "    {\"source\": \"" << json_escape(source) << "\", \"code\": \""
     << polymem::verify::lint_code(d.kind) << "\", \"name\": \""
     << polymem::verify::lint_name(d.kind) << "\", \"severity\": \""
     << polymem::verify::severity_name(d.severity) << "\", \"op\": " << d.op
     << ", \"message\": \"" << json_escape(d.message) << '"';
  if (d.counterexample.has_value())
    os << ", \"counterexample\": " << json_counterexample(*d.counterexample);
  os << '}';
  return os.str();
}

std::string json_violation(const polymem::verify::Violation& v) {
  std::ostringstream os;
  os << "    {\"code\": \"" << polymem::verify::check_code(v.check)
     << "\", \"name\": \"" << polymem::verify::check_name(v.check)
     << "\", \"severity\": \"error\", \"message\": \""
     << json_escape(v.message) << "\"}";
  return os.str();
}

void json_array(std::ostringstream& os, const char* key,
                const std::vector<std::string>& items) {
  os << "  \"" << key << "\": [";
  for (std::size_t k = 0; k < items.size(); ++k)
    os << (k == 0 ? "\n" : ",\n") << items[k];
  os << (items.empty() ? "]" : "\n  ]");
}

// --- run modes --------------------------------------------------------

struct Options {
  bool prove = false;
  bool json = false;
  std::string path;
  std::string affine_spec;  // --prove-affine
  std::string scheme_flag;  // --scheme (prove-affine without a file)
  std::int64_t p_flag = 0;  // --p
  std::int64_t q_flag = 0;  // --q
};

int run_lint(const Options& opt) {
  const auto file = ConfigFile::load(opt.path);
  const PolyMemConfig cfg = parse_config(file);
  std::vector<BatchOp> ops;
  std::vector<std::pair<std::string, polymem::sched::AccessTrace>> traces;
  for (const auto& [key, value] : file.entries()) {
    if (key.rfind("affine", 0) == 0)
      ops.push_back(parse_affine_op(key, value));
    else if (key.rfind("op", 0) == 0)
      ops.push_back(parse_op(key, value));
    if (key.rfind("trace", 0) == 0)
      traces.emplace_back(key, parse_trace(key, value));
  }

  bool clean = true;
  const LintReport program = polymem::verify::lint_program(cfg, ops);
  clean = clean && program.ok();
  struct TraceResult {
    std::string name;
    std::int64_t size = 0;
    LintReport report;
  };
  std::vector<TraceResult> trace_reports;
  for (const auto& [name, trace] : traces) {
    trace_reports.push_back(
        {name, static_cast<std::int64_t>(trace.size()),
         polymem::verify::lint_trace(cfg, trace)});
    clean = clean && trace_reports.back().report.ok();
  }
  polymem::verify::ProverReport prover;
  if (opt.prove) {
    prover = polymem::verify::prove(cfg);
    clean = clean && prover.ok;
  }

  if (opt.json) {
    std::vector<std::string> diags;
    for (const Diagnostic& d : program.diagnostics)
      diags.push_back(json_diagnostic("program", d));
    for (const TraceResult& t : trace_reports)
      for (const Diagnostic& d : t.report.diagnostics)
        diags.push_back(json_diagnostic(t.name.c_str(), d));
    std::size_t errors = program.errors();
    std::size_t warnings = program.warnings();
    for (const TraceResult& t : trace_reports) {
      errors += t.report.errors();
      warnings += t.report.warnings();
    }
    std::ostringstream os;
    os << "{\n  \"config\": {\"scheme\": \""
       << polymem::maf::scheme_name(cfg.scheme) << "\", \"p\": " << cfg.p
       << ", \"q\": " << cfg.q << ", \"height\": " << cfg.height
       << ", \"width\": " << cfg.width << "},\n";
    json_array(os, "diagnostics", diags);
    os << ",\n";
    if (opt.prove) {
      std::vector<std::string> violations;
      for (const auto& v : prover.violations)
        violations.push_back(json_violation(v));
      os << "  \"prove\": {\"ok\": " << (prover.ok ? "true" : "false")
         << ", \"violations\": [";
      for (std::size_t k = 0; k < violations.size(); ++k)
        os << (k == 0 ? "\n" : ",\n") << "  " << violations[k];
      os << (violations.empty() ? "]" : "\n  ]") << "},\n";
    }
    os << "  \"errors\": " << errors << ",\n  \"warnings\": " << warnings
       << ",\n  \"ok\": " << (clean ? "true" : "false") << "\n}";
    std::printf("%s\n", os.str().c_str());
  } else {
    std::printf("lint: %s scheme %s, %ux%u banks, %lld x %lld elements\n",
                opt.path.c_str(), polymem::maf::scheme_name(cfg.scheme),
                cfg.p, cfg.q, static_cast<long long>(cfg.height),
                static_cast<long long>(cfg.width));
    std::printf("program (%zu op(s)):\n%s\n", ops.size(),
                program.summary().c_str());
    for (const TraceResult& t : trace_reports) {
      std::printf("%s (%lld element(s)):\n%s\n", t.name.c_str(),
                  static_cast<long long>(t.size), t.report.summary().c_str());
    }
    if (opt.prove) std::printf("%s\n", prover.summary().c_str());
  }
  return clean ? 0 : 1;
}

int run_prove_affine(const Options& opt) {
  polymem::maf::Scheme scheme = polymem::maf::Scheme::kReRo;
  unsigned p = 2, q = 4;
  if (!opt.path.empty()) {
    const PolyMemConfig cfg = parse_config(ConfigFile::load(opt.path));
    scheme = cfg.scheme;
    p = cfg.p;
    q = cfg.q;
  }
  if (!opt.scheme_flag.empty())
    scheme = polymem::maf::scheme_from_name(opt.scheme_flag);
  if (opt.p_flag > 0) p = static_cast<unsigned>(opt.p_flag);
  if (opt.q_flag > 0) q = static_cast<unsigned>(opt.q_flag);

  const auto pattern = polymem::verify::AffinePattern::parse(opt.affine_spec);
  const auto report =
      polymem::verify::prove_affine_pattern(scheme, p, q, pattern);

  if (opt.json) {
    std::vector<std::string> violations;
    for (const auto& v : report.violations)
      violations.push_back(json_violation(v));
    std::ostringstream os;
    os << "{\n  \"mode\": \"prove-affine\",\n  \"config\": {\"scheme\": \""
       << polymem::maf::scheme_name(report.scheme)
       << "\", \"p\": " << report.p << ", \"q\": " << report.q << "},\n"
       << "  \"pattern\": \"" << json_escape(report.pattern.spec())
       << "\",\n  \"proven\": \""
       << polymem::maf::support_level_name(report.proven) << "\",\n";
    if (report.counterexample.has_value())
      os << "  \"counterexample\": "
         << json_counterexample(*report.counterexample) << ",\n";
    json_array(os, "violations", violations);
    os << ",\n  \"ok\": " << (report.ok ? "true" : "false") << "\n}";
    std::printf("%s\n", os.str().c_str());
  } else {
    std::printf("%s\n", report.summary().c_str());
  }
  return report.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bool usage_error = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto flag_value = [&](const char* name) -> std::string {
      if (++a >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", name);
        usage_error = true;
        return {};
      }
      return argv[a];
    };
    if (arg == "--example") {
      std::fputs(kExample, stdout);
      return 0;
    }
    if (arg == "--prove") {
      opt.prove = true;
    } else if (arg == "--format=json") {
      opt.json = true;
    } else if (arg == "--format=text") {
      opt.json = false;
    } else if (arg == "--prove-affine") {
      opt.affine_spec = flag_value("--prove-affine");
    } else if (arg == "--scheme") {
      opt.scheme_flag = flag_value("--scheme");
    } else if (arg == "--p") {
      opt.p_flag = std::atoll(flag_value("--p").c_str());
    } else if (arg == "--q") {
      opt.q_flag = std::atoll(flag_value("--q").c_str());
    } else if (!arg.empty() && arg[0] == '-') {
      usage_error = true;
      break;
    } else if (opt.path.empty()) {
      opt.path = arg;
    } else {
      usage_error = true;
      break;
    }
  }
  if (usage_error || (opt.path.empty() && opt.affine_spec.empty())) {
    std::fprintf(stderr,
                 "usage: %s [--prove] [--format=text|json] <config-file>\n"
                 "       %s [--format=...] [--scheme S] [--p N] [--q N] "
                 "--prove-affine '<spec>' [config-file]\n"
                 "       %s --example\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }

  try {
    if (!opt.affine_spec.empty()) return run_prove_affine(opt);
    return run_lint(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
