// maf_search: derive and verify Module Assignment Functions (MAFs).
//
// Verifies the classic PRF MAFs (ReO, ReRo, ReCo, RoCo) against their
// advertised pattern families, and searches a family of linear skewing
// functions for a ReTr MAF (conflict-free p x q AND q x p rectangles),
// so the library can ship a machine-verified formula.
#include <cstdio>
#include <cstdint>
#include <vector>
#include <array>
#include <string>
#include <functional>

struct PQ { int p, q; };

using Maf = std::function<int(int i, int j, int p, int q)>; // -> bank in [0, p*q)

// Enumerate the p*q elements of a pattern anchored at (a, b).
enum class Pat { Rect, TRect, Row, Col, MDiag, SDiag };
static const char* pat_name(Pat x) {
  switch (x) {
    case Pat::Rect: return "rect";
    case Pat::TRect: return "trect";
    case Pat::Row: return "row";
    case Pat::Col: return "col";
    case Pat::MDiag: return "mdiag";
    case Pat::SDiag: return "sdiag";
  }
  return "?";
}

static void elements(Pat pat, int a, int b, int p, int q,
                     std::vector<std::pair<int,int>>& out) {
  const int n = p * q;
  out.clear();
  switch (pat) {
    case Pat::Rect:
      for (int u = 0; u < p; ++u)
        for (int v = 0; v < q; ++v) out.emplace_back(a + u, b + v);
      break;
    case Pat::TRect:
      for (int u = 0; u < q; ++u)
        for (int v = 0; v < p; ++v) out.emplace_back(a + u, b + v);
      break;
    case Pat::Row:
      for (int k = 0; k < n; ++k) out.emplace_back(a, b + k);
      break;
    case Pat::Col:
      for (int k = 0; k < n; ++k) out.emplace_back(a + k, b);
      break;
    case Pat::MDiag:
      for (int k = 0; k < n; ++k) out.emplace_back(a + k, b + k);
      break;
    case Pat::SDiag:
      for (int k = 0; k < n; ++k) out.emplace_back(a + k, b - k);
      break;
  }
}

// True if all accesses of `pat` at every anchor map to distinct banks.
// Anchors swept over several MAF periods; coordinates may be negative for
// SDiag so we offset anchors to stay non-negative.
static bool conflict_free(const Maf& maf, Pat pat, int p, int q,
                          bool aligned_only = false) {
  const int n = p * q;
  const int span = 4 * n; // > any period of the linear skew family
  std::vector<std::pair<int,int>> el;
  std::vector<char> seen(n);
  for (int a = 0; a < span; ++a) {
    for (int b = 0; b < span; ++b) {
      if (aligned_only && (a % p || b % q)) continue;
      int boff = (pat == Pat::SDiag) ? span : 0;
      elements(pat, a, b + boff, p, q, el);
      std::fill(seen.begin(), seen.end(), 0);
      bool ok = true;
      for (auto [i, j] : el) {
        int m = maf(i, j, p, q);
        if (m < 0 || m >= n || seen[m]) { ok = false; break; }
        seen[m] = 1;
      }
      if (!ok) return false;
    }
  }
  return true;
}

static int floordiv(int a, int b) { return (a >= 0) ? a / b : -((-a + b - 1) / b); }
static int mod(int a, int b) { int r = a % b; return r < 0 ? r + b : r; }

int main() {
  // ---- classic PRF MAFs --------------------------------------------------
  Maf reo = [](int i, int j, int p, int q) {
    return mod(i, p) * q + mod(j, q);
  };
  Maf rero = [](int i, int j, int p, int q) {
    return mod(i + floordiv(j, q), p) * q + mod(j, q);
  };
  Maf reco = [](int i, int j, int p, int q) {
    return mod(i, p) * q + mod(j + floordiv(i, p), q);
  };
  Maf roco = [](int i, int j, int p, int q) {
    return mod(i + floordiv(j, q), p) * q + mod(j + floordiv(i, p), q);
  };

  std::vector<PQ> pqs = {{2,2},{2,4},{2,8},{4,2},{4,4},{8,2},{1,8},{8,1},{4,8},{2,16}};
  auto report = [&](const char* name, const Maf& maf) {
    std::printf("%-5s:", name);
    for (auto [p, q] : pqs) {
      std::printf("  (%d,%d)[", p, q);
      for (Pat pat : {Pat::Rect, Pat::TRect, Pat::Row, Pat::Col, Pat::MDiag, Pat::SDiag}) {
        bool cf = conflict_free(maf, pat, p, q);
        bool al = cf ? cf : conflict_free(maf, pat, p, q, true);
        std::printf("%s%s%s ", cf ? "" : (al ? "(" : "!"), pat_name(pat),
                    cf ? "" : (al ? ")" : ""));
      }
      std::printf("]\n      ");
    }
    std::printf("\n");
  };
  report("ReO", reo);
  report("ReRo", rero);
  report("ReCo", reco);
  report("RoCo", roco);

  // ---- ReTr search -------------------------------------------------------
  // family: m(i,j) = (a1*j + a2*fd(j,p) + a3*fd(j,q) + a4*i + a5*fd(i,p) + a6*fd(i,q)) mod n
  for (auto [p, q] : std::vector<PQ>{{2,4},{2,8},{4,2},{4,4},{2,2},{4,8}}) {
    const int n = p * q;
    bool found = false;
    for (int a1 = 0; a1 < n && !found; ++a1)
    for (int a2 = 0; a2 < n && !found; ++a2)
    for (int a3 = 0; a3 < n && !found; ++a3)
    for (int a4 = 0; a4 < n && !found; ++a4)
    for (int a5 = 0; a5 < n && !found; ++a5)
    for (int a6 = 0; a6 < n && !found; ++a6) {
      Maf cand = [=](int i, int j, int pp, int qq) {
        return mod(a1*j + a2*floordiv(j,pp) + a3*floordiv(j,qq)
                 + a4*i + a5*floordiv(i,pp) + a6*floordiv(i,qq), pp*qq);
      };
      if (conflict_free(cand, Pat::Rect, p, q) &&
          conflict_free(cand, Pat::TRect, p, q)) {
        std::printf("ReTr (%d,%d): m = (%d*j + %d*|j/p| + %d*|j/q| + %d*i + %d*|i/p| + %d*|i/q|) mod %d\n",
                    p, q, a1, a2, a3, a4, a5, a6, n);
        // which other patterns come for free?
        for (Pat pat : {Pat::Row, Pat::Col, Pat::MDiag, Pat::SDiag})
          if (conflict_free(cand, pat, p, q))
            std::printf("          also conflict-free: %s\n", pat_name(pat));
        found = true;
      }
    }
    if (!found) std::printf("ReTr (%d,%d): NOT FOUND in family\n", p, q);
  }
  return 0;
}
