// Hot-path benchmark runner: measures the functional model's parallel-read
// throughput on the naive AGU path, the plan-template cached path, and the
// compiled batched engine — at the host's best SIMD level and with the
// kernels forced scalar — and emits machine-readable JSON (BENCH_core.json)
// so both the engine speedup and the SIMD contribution are tracked in the
// repository. A roofline-style bytes/cycle figure per case shows how close
// the gather loop runs to the load-port limit.
//
// Unlike bench/bench_micro.cpp (google-benchmark, interactive tuning) this
// runner is deliberately dependency-free: plain chrono timing, median of
// repeated trials, fixed workloads — stable enough to commit its output.
//
// Usage: bench_core [output.json]   (default BENCH_core.json)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "core/polymem.hpp"
#include "core/simd/dispatch.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace polymem;
using Clock = std::chrono::steady_clock;

struct Case {
  maf::Scheme scheme;
  unsigned p;
  unsigned q;
};

// The ISSUE's acceptance geometries: ReRo and RoCo at 2x4 and 4x4.
constexpr Case kCases[] = {
    {maf::Scheme::kReRo, 2, 4},
    {maf::Scheme::kReRo, 4, 4},
    {maf::Scheme::kRoCo, 2, 4},
    {maf::Scheme::kRoCo, 4, 4},
};

constexpr int kTrials = 7;
constexpr std::int64_t kAccessesPerTrial = 200'000;

struct Workload {
  access::PatternKind kind;
  std::int64_t step_i;  // anchor stride down the rows
};

// Row walks where rows are served anywhere; aligned rect walks otherwise
// (RoCo serves rectangles only at p/q-aligned anchors).
Workload pick_workload(const core::PolyMem& mem) {
  if (mem.supports(access::PatternKind::kRow) == maf::SupportLevel::kAny)
    return {access::PatternKind::kRow, 1};
  return {access::PatternKind::kRect,
          static_cast<std::int64_t>(mem.config().p)};
}

// Median-of-trials ns per parallel access for one run function.
template <typename Fn>
double measure_ns(Fn&& run) {
  std::vector<double> trials;
  run();  // warm-up: populates the plan cache, faults in the banks
  for (int t = 0; t < kTrials; ++t) {
    const auto start = Clock::now();
    run();
    const auto stop = Clock::now();
    trials.push_back(
        std::chrono::duration<double, std::nano>(stop - start).count() /
        static_cast<double>(kAccessesPerTrial));
  }
  std::sort(trials.begin(), trials.end());
  return trials[trials.size() / 2];
}

// Best-effort CPU clock for the roofline figure; 0.0 when unknown.
// /proc/cpuinfo reports the *current* MHz, which is close enough for a
// bytes-per-cycle estimate on a pinned benchmark run.
double cpu_ghz() {
  std::ifstream is("/proc/cpuinfo");
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("cpu MHz", 0) != 0) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::istringstream v(line.substr(colon + 1));
    double mhz = 0.0;
    if (v >> mhz && mhz > 0.0) return mhz / 1000.0;
  }
  return 0.0;
}

struct Result {
  std::string scheme;
  unsigned p, q;
  std::string pattern;
  double naive_ns, cached_ns, batched_ns, mt_ns;
  double scalar_ns, simd_ns;
  double cached_speedup, batched_speedup, mt_speedup, simd_speedup;
  double bytes_per_access, bytes_per_cycle;
};

Result run_case(const Case& c) {
  const auto cfg =
      core::PolyMemConfig::with_capacity(256 * KiB, c.scheme, c.p, c.q);
  core::PolyMem mem(cfg);
  const Workload w = pick_workload(mem);
  const std::int64_t anchors = cfg.height / w.step_i;
  std::vector<core::Word> out(cfg.lanes());

  auto walk = [&] {
    std::int64_t i = 0;
    for (std::int64_t n = 0; n < kAccessesPerTrial; ++n) {
      mem.read_into({w.kind, {(i % anchors) * w.step_i, 0}}, 0, out);
      ++i;
    }
  };

  mem.set_plan_cache_enabled(false);
  const double naive_ns = measure_ns(walk);
  mem.set_plan_cache_enabled(true);
  const double cached_ns = measure_ns(walk);

  // Batched engine: the same column of anchors as one AccessBatch,
  // repeated until ~kAccessesPerTrial accesses ran.
  const core::AccessBatch batch{
      w.kind, {0, 0}, {w.step_i, 0}, anchors, {0, 0}, 1};
  const std::int64_t reps = std::max<std::int64_t>(
      1, kAccessesPerTrial / batch.count());
  std::vector<core::Word> bulk(
      static_cast<std::size_t>(batch.count()) * cfg.lanes());
  auto batched = [&] {
    for (std::int64_t r = 0; r < reps; ++r) mem.read_batch(batch, 0, bulk);
  };
  // Normalise to the actual access count of one batched trial.
  const double scale = static_cast<double>(reps * batch.count()) /
                       static_cast<double>(kAccessesPerTrial);
  // Same compiled ExecPlan, kernels forced scalar vs the host's best
  // level — isolates the SIMD contribution from the plan compilation win.
  core::simd::force_level(core::simd::Level::kScalar);
  const double scalar_ns = measure_ns(batched) / scale;
  core::simd::force_level(core::simd::detected_level());
  const double simd_ns = measure_ns(batched) / scale;
  const double batched_ns = simd_ns;

  // Roofline-style figure: one parallel access gathers lanes words from
  // the banks and stores lanes words to the caller's buffer.
  const double bytes_per_access =
      2.0 * static_cast<double>(cfg.lanes()) * sizeof(core::Word);
  const double ghz = cpu_ghz();
  const double bytes_per_cycle =
      ghz > 0.0 ? bytes_per_access / (simd_ns * ghz) : 0.0;

  // Threaded variant of the batched engine (read_batch_mt over the
  // parallel runtime, hardware-sized pool). Same workload, bit-identical
  // output — see bench_parallel for the dedicated multi-port study.
  runtime::ThreadPool pool(runtime::ThreadPool::hardware_threads() - 1);
  auto batched_mt = [&] {
    for (std::int64_t r = 0; r < reps; ++r)
      mem.read_batch_mt(batch, pool, bulk);
  };
  const double mt_ns = measure_ns(batched_mt) / scale;

  return {maf::scheme_name(c.scheme),
          c.p,
          c.q,
          access::pattern_name(w.kind),
          naive_ns,
          cached_ns,
          batched_ns,
          mt_ns,
          scalar_ns,
          simd_ns,
          naive_ns / cached_ns,
          naive_ns / batched_ns,
          naive_ns / mt_ns,
          scalar_ns / simd_ns,
          bytes_per_access,
          bytes_per_cycle};
}

void write_json(const std::vector<Result>& results, const std::string& path) {
  std::ofstream os(path);
  os.precision(2);
  os << std::fixed;
  os << "{\n  \"benchmark\": \"polymem_hot_path\",\n"
     << "  \"unit\": \"ns_per_parallel_access\",\n"
     << "  \"accesses_per_trial\": " << kAccessesPerTrial << ",\n"
     << "  \"trials\": " << kTrials << ",\n"
     << "  \"simd_level\": \""
     << core::simd::level_name(core::simd::detected_level()) << "\",\n"
     << "  \"cases\": [\n";
  for (std::size_t k = 0; k < results.size(); ++k) {
    const Result& r = results[k];
    os << "    {\"scheme\": \"" << r.scheme << "\", \"p\": " << r.p
       << ", \"q\": " << r.q << ", \"pattern\": \"" << r.pattern << "\",\n"
       << "     \"naive_ns\": " << r.naive_ns
       << ", \"cached_ns\": " << r.cached_ns
       << ", \"batched_ns\": " << r.batched_ns
       << ", \"batched_mt_ns\": " << r.mt_ns << ",\n"
       << "     \"scalar_ns\": " << r.scalar_ns
       << ", \"simd_ns\": " << r.simd_ns
       << ", \"simd_speedup\": " << r.simd_speedup << ",\n"
       << "     \"cached_speedup\": " << r.cached_speedup
       << ", \"batched_speedup\": " << r.batched_speedup
       << ", \"batched_mt_speedup\": " << r.mt_speedup << ",\n"
       << "     \"bytes_per_access\": " << r.bytes_per_access
       << ", \"bytes_per_cycle\": " << r.bytes_per_cycle << "}"
       << (k + 1 < results.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_core.json";
  std::vector<Result> results;
  for (const Case& c : kCases) {
    results.push_back(run_case(c));
    const Result& r = results.back();
    std::cout << r.scheme << " " << r.p << "x" << r.q << " (" << r.pattern
              << "): naive " << r.naive_ns << " ns, cached " << r.cached_ns
              << " ns (" << r.cached_speedup << "x), batched "
              << r.batched_ns << " ns (" << r.batched_speedup
              << "x), batched-mt " << r.mt_ns << " ns (" << r.mt_speedup
              << "x), scalar " << r.scalar_ns << " ns vs simd " << r.simd_ns
              << " ns (" << r.simd_speedup << "x), " << r.bytes_per_cycle
              << " B/cycle\n";
  }
  write_json(results, path);
  std::cout << "wrote " << path << " (simd level "
            << core::simd::level_name(core::simd::detected_level())
            << ")\n";

  // Tracking gates. The compiled ExecPlan engine replaced the per-access
  // interpreter on the batched path, so the honest bar moved twice: the
  // cached path keeps its 2.5x-over-naive gate, while the batched path is
  // now gated in absolute terms — the ISSUE's acceptance criterion of
  // <= 60 ns per parallel access on the p=4,q=4 geometries (the compiled
  // gather loop lands near 8 ns; 60 leaves headroom for slow CI hosts).
  bool ok = true;
  for (const Result& r : results) {
    ok = ok && r.cached_speedup >= 2.5 && r.batched_speedup >= 2.5;
    if (r.p == 4 && r.q == 4) ok = ok && r.batched_ns <= 60.0;
  }
  if (!ok) {
    std::cerr << "WARNING: speedup below 2.5x or 4x4 batched above 60 ns\n";
    return 1;
  }
  return 0;
}
