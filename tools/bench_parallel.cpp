// Parallel-runtime benchmark runner: measures (1) the DSE sweep wall time
// serial vs multi-threaded (dse::DseExplorer::sweep over the thread pool)
// and (2) batched parallel-read throughput of the serial single-port
// engine vs the concurrent multi-port engine (PolyMem::read_batch vs
// read_batch_mt), and emits machine-readable JSON (BENCH_parallel.json)
// committed at the repo root.
//
// Like bench_core this runner is dependency-free (plain chrono, fixed
// workloads). Trial wall times feed the common/stats Reservoir, so the
// read comparison reports a p95 tail next to the median instead of wall
// time alone. Both comparisons cross-check results
// before timing counts: the sweep checksums must match the serial sweep
// and the MT read output must be bit-identical to the serial read, so a
// determinism regression fails the benchmark rather than skewing it.
//
// The container this repo grows in may expose a single hardware thread;
// the JSON therefore records hardware_threads next to every speedup so
// numbers from different hosts are comparable. On a 1-CPU host the
// speedups hover around 1x — the interesting signal is then the
// *overhead* (how far below 1x the threaded path falls).
//
// Usage: bench_parallel [output.json] [threads]
//        (defaults: BENCH_parallel.json, hardware concurrency)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "core/polymem.hpp"
#include "dse/explorer.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace polymem;
using Clock = std::chrono::steady_clock;

constexpr int kTrials = 5;        // slow sweeps: median only
constexpr int kReadTrials = 31;   // fast reads: enough for a p95 tail

/// Times `trials` runs (after one warm-up) and summarizes the per-trial
/// wall-time distribution in milliseconds through the common/stats
/// Reservoir — the same percentile machinery the service load generator
/// uses for request latency.
template <typename Fn>
Reservoir::Summary trial_summary(Fn&& run, int trials) {
  Reservoir res(static_cast<std::size_t>(trials), /*seed=*/7);
  run();  // warm-up
  for (int t = 0; t < trials; ++t) {
    const auto start = Clock::now();
    run();
    const auto stop = Clock::now();
    res.add(std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return res.summary();
}

template <typename Fn>
double median_ms(Fn&& run) {
  return trial_summary(run, kTrials).p50;
}

struct SweepResult {
  double serial_ms, parallel_ms, speedup;
  bool checksums_match;
};

SweepResult bench_sweep(unsigned threads) {
  const dse::DseExplorer explorer;
  const dse::SweepOptions serial{.threads = 1, .validate = true};
  dse::SweepOptions parallel = serial;
  parallel.threads = threads;

  // Determinism cross-check before timing anything.
  const auto ref = explorer.sweep(serial);
  const auto par = explorer.sweep(parallel);
  bool match = ref.size() == par.size();
  for (std::size_t k = 0; match && k < ref.size(); ++k)
    match = ref[k].validation_ok && par[k].validation_ok &&
            ref[k].validation_checksum == par[k].validation_checksum;

  SweepResult r{};
  r.checksums_match = match;
  r.serial_ms = median_ms([&] { (void)explorer.sweep(serial); });
  r.parallel_ms = median_ms([&] { (void)explorer.sweep(parallel); });
  r.speedup = r.serial_ms / r.parallel_ms;
  return r;
}

struct ReadResult {
  unsigned ports;
  double serial_ns, mt_ns, speedup;      // per access, from the p50 trial
  double serial_p95_ns, mt_p95_ns;       // per access, p95 trial tail
  double serial_gbps, mt_gbps;  // aggregate bandwidth over the batch
  bool bit_identical;
};

ReadResult bench_read(unsigned ports, unsigned threads) {
  const auto cfg = core::PolyMemConfig::with_capacity(
      256 * KiB, maf::Scheme::kReRo, 2, 4, ports);
  core::PolyMem mem(cfg);
  std::vector<core::Word> row(cfg.width);
  for (std::int64_t i = 0; i < cfg.height; ++i) {
    for (std::int64_t j = 0; j < cfg.width; ++j)
      row[j] = static_cast<core::Word>(i * cfg.width + j);
    mem.fill_rect({i, 0}, 1, cfg.width, row);
  }

  const auto lanes = static_cast<std::int64_t>(cfg.lanes());
  const core::AccessBatch batch{access::PatternKind::kRow, {0, 0},
                                {0, lanes}, cfg.width / lanes,
                                {1, 0},     cfg.height};
  const std::int64_t accesses = batch.count();
  std::vector<core::Word> serial(static_cast<std::size_t>(accesses) * lanes);
  std::vector<core::Word> parallel(serial.size());
  runtime::ThreadPool pool(threads > 0 ? threads - 1 : 0);

  mem.read_batch(batch, 0, serial);
  mem.read_batch_mt(batch, pool, parallel);
  const bool identical = serial == parallel;

  const auto serial_trials = trial_summary(
      [&] { mem.read_batch(batch, 0, serial); }, kReadTrials);
  const auto mt_trials = trial_summary(
      [&] { mem.read_batch_mt(batch, pool, parallel); }, kReadTrials);

  const double bytes =
      static_cast<double>(serial.size()) * sizeof(core::Word);
  const double per_access = 1e6 / static_cast<double>(accesses);
  ReadResult r{};
  r.ports = ports;
  r.serial_ns = serial_trials.p50 * per_access;
  r.mt_ns = mt_trials.p50 * per_access;
  r.serial_p95_ns = serial_trials.p95 * per_access;
  r.mt_p95_ns = mt_trials.p95 * per_access;
  r.speedup = r.serial_ns / r.mt_ns;
  r.serial_gbps = bytes / (serial_trials.p50 * 1e-3) / 1e9;
  r.mt_gbps = bytes / (mt_trials.p50 * 1e-3) / 1e9;
  r.bit_identical = identical;
  return r;
}

void write_json(const std::string& path, unsigned threads,
                const SweepResult& sweep,
                const std::vector<ReadResult>& reads) {
  std::ofstream os(path);
  os.precision(2);
  os << std::fixed;
  os << "{\n  \"benchmark\": \"polymem_parallel_runtime\",\n"
     << "  \"hardware_threads\": " << runtime::ThreadPool::hardware_threads()
     << ",\n  \"threads\": " << threads << ",\n  \"trials\": " << kTrials
     << ",\n  \"read_trials\": " << kReadTrials << ",\n"
     << "  \"dse_sweep\": {\"points\": 90, \"validate\": true,\n"
     << "    \"serial_ms\": " << sweep.serial_ms
     << ", \"parallel_ms\": " << sweep.parallel_ms
     << ", \"speedup\": " << sweep.speedup << ",\n"
     << "    \"checksums_match\": "
     << (sweep.checksums_match ? "true" : "false") << "},\n"
     << "  \"batched_read\": [\n";
  for (std::size_t k = 0; k < reads.size(); ++k) {
    const ReadResult& r = reads[k];
    os << "    {\"scheme\": \"ReRo\", \"p\": 2, \"q\": 4, \"ports\": "
       << r.ports << ",\n"
       << "     \"serial_ns_per_access\": " << r.serial_ns
       << ", \"mt_ns_per_access\": " << r.mt_ns
       << ", \"speedup\": " << r.speedup << ",\n"
       << "     \"serial_p95_ns_per_access\": " << r.serial_p95_ns
       << ", \"mt_p95_ns_per_access\": " << r.mt_p95_ns << ",\n"
       << "     \"serial_gb_per_s\": " << r.serial_gbps
       << ", \"mt_gb_per_s\": " << r.mt_gbps << ", \"bit_identical\": "
       << (r.bit_identical ? "true" : "false") << "}"
       << (k + 1 < reads.size() ? ",\n" : "\n");
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2]))
               : runtime::ThreadPool::hardware_threads();

  std::cout << "hardware threads: "
            << runtime::ThreadPool::hardware_threads() << ", using "
            << threads << "\n";

  const SweepResult sweep = bench_sweep(threads);
  std::cout << "DSE sweep (90 points, validated): serial " << sweep.serial_ms
            << " ms, " << threads << " threads " << sweep.parallel_ms
            << " ms (" << sweep.speedup << "x), checksums "
            << (sweep.checksums_match ? "match" : "DIVERGE") << "\n";

  std::vector<ReadResult> reads;
  for (unsigned ports : {1u, 2u, 4u}) {
    reads.push_back(bench_read(ports, threads));
    const ReadResult& r = reads.back();
    std::cout << "batched read ReRo 2x4 " << r.ports << "P: serial "
              << r.serial_ns << " ns/access (p95 " << r.serial_p95_ns
              << ", " << r.serial_gbps << " GB/s), mt " << r.mt_ns
              << " ns/access (p95 " << r.mt_p95_ns << ", " << r.mt_gbps
              << " GB/s, " << r.speedup << "x), "
              << (r.bit_identical ? "bit-identical" : "OUTPUT DIVERGES")
              << "\n";
  }

  write_json(path, threads, sweep, reads);
  std::cout << "wrote " << path << "\n";

  bool ok = sweep.checksums_match;
  for (const ReadResult& r : reads) ok = ok && r.bit_identical;
  if (!ok) {
    std::cerr << "ERROR: parallel results diverge from serial reference\n";
    return 1;
  }
  return 0;
}
