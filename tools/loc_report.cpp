// Prints a per-module lines-of-code report, the reproduction's analogue of
// the paper's Table II productivity analysis (which reported LOC and effort
// per MaxJ module). Usage: loc_report [repo_root]
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

namespace fs = std::filesystem;

namespace {

bool is_source(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::size_t count_lines(const fs::path& p) {
  std::ifstream in(p);
  std::size_t n = 0;
  std::string line;
  while (std::getline(in, line)) ++n;
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::path(".");
  std::map<std::string, std::size_t> by_module;
  std::size_t total = 0;
  for (const char* top : {"src", "tests", "bench", "examples", "tools"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !is_source(entry.path())) continue;
      const fs::path rel = fs::relative(entry.path(), root);
      // Module = first two path components ("src/core", "tests", ...).
      auto it = rel.begin();
      std::string module = it->string();
      if (module == "src" && std::next(it) != rel.end())
        module += "/" + std::next(it)->string();
      const std::size_t lines = count_lines(entry.path());
      by_module[module] += lines;
      total += lines;
    }
  }
  std::cout << "Module LOC report (cf. paper Table II)\n";
  for (const auto& [module, lines] : by_module)
    std::cout << "  " << module << ": " << lines << "\n";
  std::cout << "  TOTAL: " << total << "\n";
  return 0;
}
